"""Stdlib HTTP front end for the prediction service.

A :class:`PredictionServer` is a ``ThreadingHTTPServer`` that serves
models out of a :class:`~repro.serve.registry.ModelRegistry` (services
are created lazily per (name, version) and cached).  JSON endpoints:

=======================  ====  =========================================
``/healthz``             GET   liveness + degraded flag + model names
``/models``              GET   registry listing with manifests
``/metrics``             GET   per-service snapshots + server health
``/predict``             POST  one configuration, many scales
``/batch``               POST  many (params, scales) requests at once
``/wait``                POST  queue-wait predictions from a wait-model
``/whatif``              POST  cost/turnaround frontier over scales
``/waste``               POST  waste report over the configured store
=======================  ====  =========================================

Request bodies::

    POST /predict {"params": {"nx": 256, ...}, "scales": [1024, 2048],
                   "model": "stencil-prod", "version": 3}
    POST /batch   {"requests": [{"params": {...}, "scales": [...]}, ...],
                   "model": "stencil-prod"}

``model`` may be omitted when the registry holds exactly one model;
``version`` defaults to the registry's pin/latest resolution.  Request
errors return HTTP 400 (unknown models/versions -> 404) with
``{"error": <exception type>, "message": ...}``; nothing in this module
ever renders a traceback to the client.

Authentication (optional): pass ``auth_token`` (CLI ``--auth-token`` or
``REPRO_AUTH_TOKEN``) and every POST route requires an
``Authorization: Bearer <token>`` header — compared in constant time —
returning HTTP 401 with a ``WWW-Authenticate`` challenge otherwise.
GET routes (health probes, registry listings, metrics scrapers) stay
open: they expose no prediction surface and load-balancer health checks
cannot attach headers.

Scheduler-intelligence routes (see :mod:`repro.sched`): ``/wait`` serves
``kind="wait-model"`` artifacts out of the same registry, ``/whatif``
sweeps candidate scales through a runtime model (packed path) plus an
optional wait model into a Pareto frontier, and ``/waste`` streams a
waste report over the history store the server was started with
(``waste_store``).

Degraded operation (all optional, see :func:`create_server`):

* **rate limiting** — a :class:`~repro.serve.overload.TokenBucket`
  gates the prediction routes; over-budget requests get HTTP 429 with
  a ``Retry-After`` header instead of queueing unboundedly.
* **deadlines** — a per-request budget checked *cooperatively* at the
  request pipeline's stages (body parsed, model resolved, prediction
  done); a blown deadline returns HTTP 504.  A stdlib thread cannot be
  preempted mid-predict, so an in-flight numpy call is never killed —
  the check fires at the next stage boundary.
* **circuit breaker + stale-while-revalidate** — model-load failures
  trip a per-model :class:`~repro.serve.overload.CircuitBreaker`;
  while it is open (and on any load failure, when ``allow_stale``) the
  server answers from the newest cached in-memory service, or failing
  that an older intact on-disk version, marking responses ``"stale":
  true`` and ``/healthz`` ``"degraded": true`` — one corrupt artifact
  never turns into an outage.
* **hot reload** — name resolution is cached for ``reload_interval``
  seconds and re-checked against the model directory's mtime, so a
  newly registered version is picked up within one interval without
  restarting, and without a registry scan per request.

No third-party web framework is used on purpose: the stdlib threading
server is enough for the paper-scale workloads benchmarked here, and it
keeps the serving layer importable everywhere the library is.
"""

from __future__ import annotations

import hmac
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

import numpy as np

from ..errors import (
    AuthenticationError,
    ConfigurationError,
    DeadlineExceededError,
    PredictionRequestError,
    RateLimitedError,
    RegistryError,
    ReproError,
    ServiceUnavailableError,
)
from ..log import get_logger
from .overload import CircuitBreaker, TokenBucket
from .registry import ModelRegistry
from .service import PredictionService

__all__ = ["PredictionServer", "create_server"]

logger = get_logger("serve.server")

_MAX_BODY_BYTES = 16 * 1024 * 1024


class PredictionServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one model registry."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: ModelRegistry,
        default_model: str | None = None,
        cache_size: int = 4096,
        deadline: float | None = None,
        rate: float | None = None,
        burst: float | None = None,
        reload_interval: float = 1.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        allow_stale: bool = True,
        use_packed: bool = True,
        auth_token: str | None = None,
        waste_store: "str | Any | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(address, _Handler)
        self.registry = registry
        self.default_model = default_model
        self.cache_size = cache_size
        self.use_packed = bool(use_packed)
        self.deadline = deadline
        self.reload_interval = float(reload_interval)
        self.allow_stale = bool(allow_stale)
        self.auth_token = auth_token or None
        self.waste_store = waste_store
        self._waste_store_opened: Any = None
        self.clock = clock
        self.limiter = (
            TokenBucket(rate, burst, clock=clock) if rate else None
        )
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown = float(breaker_cooldown)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._services: dict[tuple[str, int], PredictionService] = {}
        #: wait-model artifacts served by /wait and /whatif, cached by
        #: registry coordinates (they bypass PredictionService: no
        #: (params, scale) surface to cache over)
        self._wait_artifacts: dict[tuple[str, int], Any] = {}
        self._services_lock = threading.Lock()
        #: per-name resolution cache: version + when checked + dir mtime
        self._resolved: dict[str, dict[str, Any]] = {}
        #: models currently served from a non-requested (stale) version
        self._stale: dict[str, dict[str, int]] = {}
        self.reloads = 0

    # -- model resolution --------------------------------------------------

    def _breaker(self, name: str) -> CircuitBreaker:
        with self._services_lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    threshold=self._breaker_threshold,
                    cooldown=self._breaker_cooldown,
                    clock=self.clock,
                )
        return breaker

    def _resolve(self, name: str, version: int | None) -> int:
        """Pin/latest resolution with an mtime-validated cache.

        Explicit versions bypass the cache.  Otherwise the cached
        answer is trusted for ``reload_interval`` seconds; after that
        the model directory's mtime is compared and a change (a new
        version registered, a pin moved, a quarantine) triggers a full
        re-resolution — that is the hot-reload path.
        """
        if version is not None:
            return self.registry.resolve(name, version)
        now = self.clock()
        entry = self._resolved.get(name)
        if entry is not None and now - entry["checked"] < self.reload_interval:
            return entry["version"]
        try:
            mtime_ns = self.registry.root.joinpath(name).stat().st_mtime_ns
        except OSError:
            mtime_ns = None
        if entry is not None and entry["mtime_ns"] == mtime_ns:
            entry["checked"] = now
            return entry["version"]
        resolved = self.registry.resolve(name, None)
        if entry is not None and entry["version"] != resolved:
            self.reloads += 1
            logger.info(
                "hot reload: %s now resolves to v%04d (was v%04d)",
                name, resolved, entry["version"],
            )
        self._resolved[name] = {
            "version": resolved, "checked": now, "mtime_ns": mtime_ns,
        }
        return resolved

    def _request_name(self, model: str | None) -> str:
        name = model or self.default_model
        if name is None:
            models = self.registry.models()
            if len(models) == 1:
                name = models[0]
            else:
                raise PredictionRequestError(
                    "Request must name a model ('model' field); registry "
                    f"holds {models or 'no models'}."
                )
        return name

    def service_for(
        self, model: str | None, version: int | None
    ) -> PredictionService:
        """Resolve (and lazily load) the service for a request.

        On a load failure the per-model circuit breaker records it and
        the server falls back to the last-known-good service — the
        newest already-loaded in-memory one, else the newest older
        intact version on disk — rather than failing the request.
        :class:`~repro.errors.ServiceUnavailableError` (HTTP 503) is
        raised only when nothing at all is servable.
        """
        name = self._request_name(model)
        resolved = self._resolve(name, version)  # RegistryError -> 404
        key = (name, resolved)
        with self._services_lock:
            service = self._services.get(key)
        if service is not None:
            self._stale.pop(name, None)
            return service

        breaker = self._breaker(name)
        if breaker.allow():
            try:
                artifact = self.registry.load(name, resolved)
            except Exception as exc:
                breaker.record_failure()
                logger.warning(
                    "load failed for %s v%04d (%s: %s); serving "
                    "last-known-good", name, resolved,
                    type(exc).__name__, exc,
                )
            else:
                breaker.record_success()
                with self._services_lock:
                    service = self._services.setdefault(
                        key,
                        PredictionService(
                            artifact,
                            name=name,
                            version=resolved,
                            cache_size=self.cache_size,
                            use_packed=self.use_packed,
                        ),
                    )
                self._stale.pop(name, None)
                return service
        if not self.allow_stale:
            raise ServiceUnavailableError(
                f"Model {name!r} v{resolved:04d} failed to load and stale "
                "fallback is disabled."
            )
        return self._last_known_good(name, resolved)

    def _last_known_good(self, name: str, requested: int) -> PredictionService:
        """Newest cached in-memory service, else the newest older
        intact on-disk version."""
        with self._services_lock:
            cached = [
                (v, s) for (n, v), s in self._services.items() if n == name
            ]
        if cached:
            version, service = max(cached, key=lambda pair: pair[0])
            self._mark_stale(name, requested, version)
            return service
        try:
            versions = self.registry.versions(name)
        except RegistryError:
            versions = []
        for version in sorted(versions, reverse=True):
            if version == requested:
                continue
            try:
                artifact = self.registry.load(name, version)
            except Exception:
                continue
            with self._services_lock:
                service = self._services.setdefault(
                    (name, version),
                    PredictionService(
                        artifact,
                        name=name,
                        version=version,
                        cache_size=self.cache_size,
                        use_packed=self.use_packed,
                    ),
                )
            self._mark_stale(name, requested, version)
            return service
        raise ServiceUnavailableError(
            f"Model {name!r} has no servable version: v{requested:04d} "
            "failed to load and no last-known-good fallback exists."
        )

    def wait_artifact_for(self, model: str | None, version: int | None):
        """Resolve (and cache) a ``wait-model`` artifact for /wait and
        /whatif.  Wait models bypass the circuit-breaker/stale machinery:
        they are small, load in milliseconds, and a queue-wait estimate
        from a wrong version is worse than a clean error."""
        from .artifacts import KIND_WAIT_MODEL

        if model is None:
            raise PredictionRequestError(
                "Request must name a wait model ('wait_model' or 'model' "
                "field)."
            )
        resolved = self._resolve(str(model), version)
        key = (str(model), resolved)
        with self._services_lock:
            artifact = self._wait_artifacts.get(key)
        if artifact is None:
            artifact = self.registry.load(str(model), resolved)
            with self._services_lock:
                artifact = self._wait_artifacts.setdefault(key, artifact)
        if artifact.info.kind != KIND_WAIT_MODEL:
            raise PredictionRequestError(
                f"Model {model!r} v{resolved:04d} is kind "
                f"{artifact.info.kind!r}, not a wait model."
            )
        return artifact, resolved

    def open_waste_store(self):
        """The history store behind /waste (opened once, cached), or a
        clean request error when the server was started without one."""
        if self.waste_store is None:
            raise PredictionRequestError(
                "This server was started without a history store; "
                "restart with waste_store=<store dir> to enable /waste."
            )
        if self._waste_store_opened is None:
            from ..store import HistoryStore

            if isinstance(self.waste_store, HistoryStore):
                self._waste_store_opened = self.waste_store
            else:  # str or Path
                self._waste_store_opened = HistoryStore.open(self.waste_store)
        return self._waste_store_opened

    def _mark_stale(self, name: str, requested: int, serving: int) -> None:
        if serving != requested:
            self._stale[name] = {"requested": requested, "serving": serving}
            logger.warning(
                "%s: serving stale v%04d (requested v%04d)",
                name, serving, requested,
            )

    # -- health ------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while any model serves stale or has an open breaker."""
        if self._stale:
            return True
        with self._services_lock:
            breakers = list(self._breakers.values())
        return any(b.state != CircuitBreaker.CLOSED for b in breakers)

    def stale_models(self) -> dict[str, dict[str, int]]:
        return {name: dict(info) for name, info in self._stale.items()}

    def server_metrics(self) -> dict[str, Any]:
        with self._services_lock:
            breakers = {
                name: b.snapshot() for name, b in self._breakers.items()
            }
        return {
            "degraded": self.degraded,
            "stale": self.stale_models(),
            "breakers": breakers,
            "rate_limiter": (
                self.limiter.snapshot() if self.limiter else None
            ),
            "deadline": self.deadline,
            "reload_interval": self.reload_interval,
            "reloads": self.reloads,
            "use_packed": self.use_packed,
        }

    def loaded_services(self) -> list[PredictionService]:
        with self._services_lock:
            return list(self._services.values())


def create_server(
    registry: ModelRegistry | str,
    host: str = "127.0.0.1",
    port: int = 0,
    default_model: str | None = None,
    cache_size: int = 4096,
    deadline: float | None = None,
    rate: float | None = None,
    burst: float | None = None,
    reload_interval: float = 1.0,
    breaker_threshold: int = 3,
    breaker_cooldown: float = 30.0,
    allow_stale: bool = True,
    use_packed: bool = True,
    auth_token: str | None = None,
    waste_store: "str | Any | None" = None,
) -> PredictionServer:
    """Bind a :class:`PredictionServer` (``port=0`` = ephemeral).

    The caller owns the serve loop: ``server.serve_forever()`` to block,
    or drive it from a thread in tests.  ``server.server_address``
    reports the actually-bound port.  ``rate``/``burst`` enable the
    token-bucket limiter, ``deadline`` the per-request budget (seconds);
    both are off by default.  ``use_packed=False`` forces every service
    onto the object prediction path (packed pipelines are bit-identical,
    so this is a debugging escape hatch, not an accuracy knob).
    ``auth_token`` requires a matching ``Authorization: Bearer`` header
    on every POST route; ``waste_store`` (a store directory or an open
    :class:`~repro.store.HistoryStore`) enables ``/waste``.
    """
    if not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry, create=False)
    if default_model is not None:
        registry.versions(default_model)  # fail fast on unknown names
    return PredictionServer(
        (host, port),
        registry,
        default_model=default_model,
        cache_size=cache_size,
        deadline=deadline,
        rate=rate,
        burst=burst,
        reload_interval=reload_interval,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        allow_stale=allow_stale,
        use_packed=use_packed,
        auth_token=auth_token,
        waste_store=waste_store,
    )


class _Handler(BaseHTTPRequestHandler):
    server: PredictionServer  # narrowed for type checkers

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        exc: Exception,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_json(
            status,
            {"error": type(exc).__name__, "message": str(exc)},
            headers=headers,
        )

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise PredictionRequestError("Request body is required.")
        if length > _MAX_BODY_BYTES:
            raise PredictionRequestError(
                f"Request body too large ({length} bytes)."
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PredictionRequestError(
                f"Request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise PredictionRequestError(
                "Request body must be a JSON object."
            )
        return body

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except AuthenticationError as exc:
            self._send_error_json(
                401, exc,
                headers={"WWW-Authenticate": 'Bearer realm="repro"'},
            )
        except RateLimitedError as exc:
            self._send_error_json(
                429, exc,
                headers={"Retry-After": f"{max(exc.retry_after, 0.001):.3f}"},
            )
        except DeadlineExceededError as exc:
            self._send_error_json(504, exc)
        except ServiceUnavailableError as exc:
            self._send_error_json(503, exc)
        except RegistryError as exc:
            self._send_error_json(404, exc)
        except PredictionRequestError as exc:
            self._send_error_json(400, exc)
        except ReproError as exc:
            self._send_error_json(500, exc)
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # never leak a traceback to the wire
            logger.exception("unhandled error serving %s", self.path)
            self._send_error_json(500, exc)

    # -- authentication ----------------------------------------------------

    def _authenticate(self) -> None:
        """Bearer-token gate for mutating/prediction (POST) routes.

        Comparison is constant-time (``hmac.compare_digest``) so the
        check leaks nothing about the token through response timing.
        """
        token = self.server.auth_token
        if token is None:
            return
        header = self.headers.get("Authorization") or ""
        expected = f"Bearer {token}"
        if not hmac.compare_digest(
            header.encode("utf-8", "replace"),
            expected.encode("utf-8"),
        ):
            raise AuthenticationError(
                "This server requires an 'Authorization: Bearer <token>' "
                "header."
            )

    # -- overload guards ---------------------------------------------------

    def _admit(self) -> float:
        """Rate-limit gate + deadline start for a prediction route."""
        limiter = self.server.limiter
        if limiter is not None and not limiter.try_acquire():
            retry = limiter.retry_after()
            raise RateLimitedError(
                "Request rate over budget "
                f"({limiter.rate:g}/s, burst {limiter.burst:g}); retry in "
                f"{retry:.3f}s.",
                retry_after=retry,
            )
        return self.server.clock()

    def _check_deadline(self, started: float, stage: str) -> None:
        deadline = self.server.deadline
        if deadline is None:
            return
        elapsed = self.server.clock() - started
        if elapsed > deadline:
            raise DeadlineExceededError(
                f"Deadline of {deadline:g}s exceeded after {elapsed:.3f}s "
                f"({stage})."
            )

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        routes = {
            "/healthz": self._get_healthz,
            "/models": self._get_models,
            "/metrics": self._get_metrics,
        }
        handler = routes.get(self.path.split("?", 1)[0])
        if handler is None:
            self._send_json(
                404,
                {"error": "NotFound", "message": f"No route {self.path}."},
            )
            return
        self._dispatch(handler)

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        routes = {
            "/predict": self._post_predict,
            "/batch": self._post_batch,
            "/wait": self._post_wait,
            "/whatif": self._post_whatif,
            "/waste": self._post_waste,
        }
        handler = routes.get(self.path.split("?", 1)[0])
        if handler is None:
            self._send_json(
                404,
                {"error": "NotFound", "message": f"No route {self.path}."},
            )
            return
        def guarded() -> None:
            self._authenticate()
            handler()

        self._dispatch(guarded)

    def _get_healthz(self) -> None:
        degraded = self.server.degraded
        self._send_json(
            200,
            {
                "status": "degraded" if degraded else "ok",
                "degraded": degraded,
                "models": self.server.registry.models(),
                "stale": self.server.stale_models(),
            },
        )

    def _get_models(self) -> None:
        entries = [
            {
                "name": e.name,
                "version": e.version,
                "latest": e.latest,
                "pinned": e.pinned,
                "manifest": e.info.to_manifest(),
            }
            for e in self.server.registry.entries()
        ]
        self._send_json(200, {"models": entries})

    def _get_metrics(self) -> None:
        self._send_json(
            200,
            {
                "services": [
                    s.metrics() for s in self.server.loaded_services()
                ],
                "server": self.server.server_metrics(),
            },
        )

    def _stale_fields(self, service: PredictionService) -> dict[str, Any]:
        info = self.server.stale_models().get(service.name)
        if info and info["serving"] == service.version:
            return {"stale": True, "requested_version": info["requested"]}
        return {}

    def _post_predict(self) -> None:
        started = self._admit()
        body = self._read_body()
        self._check_deadline(started, "request parsed")
        service = self.server.service_for(
            body.get("model"), body.get("version")
        )
        self._check_deadline(started, "model resolved")
        predictions = service.predict_one(
            body.get("params", {}), body.get("scales", [])
        )
        self._check_deadline(started, "prediction done")
        self._send_json(
            200,
            {
                "model": service.name,
                "version": service.version,
                "scales": service.validate_scales(body.get("scales", [])),
                "predictions": predictions,
                **self._stale_fields(service),
            },
        )

    def _post_batch(self) -> None:
        started = self._admit()
        body = self._read_body()
        self._check_deadline(started, "request parsed")
        requests = body.get("requests")
        if not isinstance(requests, list):
            raise PredictionRequestError(
                "'requests' must be a list of {params, scales} objects."
            )
        service = self.server.service_for(
            body.get("model"), body.get("version")
        )
        self._check_deadline(started, "model resolved")
        pairs = []
        for item in requests:
            if not isinstance(item, dict):
                raise PredictionRequestError(
                    "each request must be a {params, scales} object."
                )
            pairs.append((item.get("params", {}), item.get("scales", [])))
        results = service.predict_batch(pairs)
        self._check_deadline(started, "prediction done")
        self._send_json(
            200,
            {
                "model": service.name,
                "version": service.version,
                "results": results,
                **self._stale_fields(service),
            },
        )

    # -- scheduler-intelligence routes -------------------------------------

    @staticmethod
    def _observation_list(body: dict[str, Any]) -> list[dict[str, Any]]:
        obs = body.get("observations")
        if obs is None:
            state = body.get("queue_state")
            if not isinstance(state, dict):
                raise PredictionRequestError(
                    "Request needs 'observations' (a list of queue-state "
                    "objects) or a single 'queue_state' object."
                )
            obs = [state]
        if not isinstance(obs, list) or not obs or not all(
            isinstance(o, dict) for o in obs
        ):
            raise PredictionRequestError(
                "'observations' must be a non-empty list of queue-state "
                "objects."
            )
        return obs

    def _post_wait(self) -> None:
        started = self._admit()
        body = self._read_body()
        self._check_deadline(started, "request parsed")
        observations = self._observation_list(body)
        artifact, version = self.server.wait_artifact_for(
            body.get("model") or body.get("wait_model"),
            body.get("version"),
        )
        self._check_deadline(started, "model resolved")
        quantiles = body.get("quantiles") or ()
        result = artifact.predict_wait(observations, quantiles=quantiles)
        self._check_deadline(started, "prediction done")
        self._send_json(
            200,
            {
                "model": body.get("model") or body.get("wait_model"),
                "version": version,
                **result,
            },
        )

    def _post_whatif(self) -> None:
        from ..sched.whatif import WhatIfPlanner

        started = self._admit()
        body = self._read_body()
        self._check_deadline(started, "request parsed")
        scales = body.get("scales", [])
        service = self.server.service_for(
            body.get("model"), body.get("version")
        )
        wait_model = None
        wait_name = body.get("wait_model")
        wait_version = None
        if wait_name is not None:
            wait_artifact, wait_version = self.server.wait_artifact_for(
                wait_name, body.get("wait_version")
            )
            wait_model = wait_artifact.predictor
        self._check_deadline(started, "model resolved")

        params = body.get("params", {})

        def runtime_predict(x, sv):
            # The service path keeps the packed pipeline + LRU cache in
            # play; params were validated by predict_one itself.
            return np.asarray(
                service.predict_one(params, [int(s) for s in sv]),
                dtype=np.float64,
            )

        try:
            planner = WhatIfPlanner(
                runtime_predict,
                wait_model=wait_model,
                limit_margin=float(body.get("limit_margin", 1.5)),
            )
            result = planner.evaluate(
                service.validate_params(params),
                service.validate_scales(scales),
                queue_state=body.get("queue_state"),
                deadline=body.get("deadline"),
                budget_core_hours=body.get("budget_core_hours"),
            )
        except (ConfigurationError, TypeError, ValueError) as exc:
            raise PredictionRequestError(
                f"Invalid what-if request: {exc}"
            ) from exc
        self._check_deadline(started, "prediction done")
        self._send_json(
            200,
            {
                "model": service.name,
                "version": service.version,
                "wait_model": wait_name,
                "wait_version": wait_version,
                **result.to_dict(),
                **self._stale_fields(service),
            },
        )

    def _post_waste(self) -> None:
        from ..sched.waste import WasteReport

        started = self._admit()
        body = self._read_body()
        self._check_deadline(started, "request parsed")
        store = self.server.open_waste_store()
        self._check_deadline(started, "store resolved")
        try:
            time_limit = body.get("time_limit")
            if time_limit is not None:
                time_limit = float(time_limit)
            chunk_rows = body.get("chunk_rows")
            if chunk_rows is not None:
                chunk_rows = int(chunk_rows)
            report = WasteReport().add_store(
                store, time_limit=time_limit, chunk_rows=chunk_rows
            )
        except (ConfigurationError, TypeError, ValueError) as exc:
            raise PredictionRequestError(
                f"Invalid waste request: {exc}"
            ) from exc
        self._check_deadline(started, "report done")
        self._send_json(
            200,
            {"store": str(getattr(store, "root", "")), **report.to_dict()},
        )
