"""Versioned on-disk persistence of fitted models.

An *artifact* is a self-describing directory holding one fitted
predictor::

    artifact/
        manifest.json   # schema version, provenance, checksums
        payload.pkl     # the fitted estimator state (pickle)
        packed.npz      # optional (schema v2): packed forest arrays

The manifest is plain JSON so operators can inspect an artifact without
unpickling anything; the payload carries the numpy-backed fitted state
(interpolation forests, multitask-lasso scalability fits, cluster
labels, scalers, :class:`~repro.robustness.report.FitReport`, ...).

Schema v2 adds an optional ``packed.npz`` sidecar: the fitted two-level
pipeline's forest arrays flattened by
:class:`~repro.core.packed_pipeline.PackedPipeline`, stored uncompressed
by default so loading memory-maps them zero-copy.  The manifest's
``packed`` entry records the sidecar's SHA-256; v1 artifacts (no
``packed`` key) still load and pack lazily in memory on first use.
Loading verifies, in order:

1. the manifest decodes and has every required key
   (:class:`~repro.errors.ArtifactFormatError` otherwise),
2. the schema version is one this build reads
   (:class:`~repro.errors.ArtifactVersionError` on artifacts from the
   future), and the manifest's ``kind`` is one of :data:`KNOWN_KINDS`
   (:class:`~repro.errors.ArtifactFormatError` otherwise — an unknown
   kind is refused *before* the payload is unpickled),
3. the payload's SHA-256 matches the manifest
   (:class:`~repro.errors.ArtifactIntegrityError` on bit rot or
   truncation),
4. when the manifest records a packed sidecar, the sidecar's SHA-256
   matches too (same exception).

:class:`TwoLevelModel` artifacts are stored through the model's
persistence hooks (``get_params`` / ``get_fitted_state``) rather than by
pickling the object wholesale, so the payload survives refactors of the
class's non-fitted surface.  Round-trips are bit-exact: a loaded
artifact predicts the same floats as the in-process model it was saved
from.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..baselines import CurveFitBaseline, DirectMLBaseline, EnsembleOfBaselines
from ..core import TwoLevelModel
from ..data.dataset import ExecutionDataset
from ..data.io import dataset_fingerprint
from ..errors import (
    ArtifactFormatError,
    ArtifactIntegrityError,
    ArtifactVersionError,
    ConfigurationError,
    PredictionRequestError,
    ReproError,
)
from ..log import get_logger
from ..store import atomic

__all__ = [
    "SCHEMA_VERSION",
    "PACKED_NAME",
    "KNOWN_KINDS",
    "KIND_TWO_LEVEL",
    "KIND_DIRECT_ML",
    "KIND_CURVE_FIT",
    "KIND_WAIT_MODEL",
    "KIND_PICKLE",
    "ArtifactInfo",
    "ModelArtifact",
    "detect_kind",
]

logger = get_logger("serve.artifacts")

#: Current artifact schema.  Bump on any manifest/payload layout change;
#: loaders accept every version <= this one.  v2 added the optional
#: ``packed`` manifest entry + ``packed.npz`` sidecar.
SCHEMA_VERSION = 2

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.pkl"
PACKED_NAME = "packed.npz"

#: Predictor kinds and how :meth:`ModelArtifact.predict_matrix`
#: dispatches on them.  ``curve-fit`` artifacts persist fine but cannot
#: answer (params, scale) queries (they have no parameter model);
#: ``wait-model`` artifacts answer queue-state queries through
#: :meth:`ModelArtifact.predict_wait` instead.
KIND_TWO_LEVEL = "two-level"
KIND_DIRECT_ML = "direct-ml"
KIND_CURVE_FIT = "curve-fit"
KIND_WAIT_MODEL = "wait-model"
KIND_PICKLE = "pickle"

#: Every kind this build reads.  :meth:`ModelArtifact.load` refuses a
#: manifest naming any other kind *before* touching the payload, so an
#: artifact written by a newer build (or a tampered manifest) never
#: reaches the unpickler.
KNOWN_KINDS = frozenset(
    {KIND_TWO_LEVEL, KIND_DIRECT_ML, KIND_CURVE_FIT, KIND_WAIT_MODEL,
     KIND_PICKLE}
)

_MANIFEST_KEYS = (
    "schema_version",
    "kind",
    "app_name",
    "param_names",
    "scales",
    "train_hash",
    "n_train_rows",
    "degraded",
    "created_unix",
    "repro_version",
    "payload_sha256",
    "metadata",
)


def detect_kind(predictor: object) -> str:
    """Classify a predictor for artifact dispatch."""
    from ..sched.wait import WaitTimePredictor

    if isinstance(predictor, TwoLevelModel):
        return KIND_TWO_LEVEL
    if isinstance(predictor, (DirectMLBaseline, EnsembleOfBaselines)):
        return KIND_DIRECT_ML
    if isinstance(predictor, CurveFitBaseline):
        return KIND_CURVE_FIT
    if isinstance(predictor, WaitTimePredictor):
        return KIND_WAIT_MODEL
    return KIND_PICKLE


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class ArtifactInfo:
    """Parsed artifact manifest (everything except the payload)."""

    kind: str
    app_name: str
    param_names: tuple[str, ...]
    scales: tuple[int, ...]
    train_hash: str | None = None
    n_train_rows: int | None = None
    degraded: bool = False
    created_unix: float = 0.0
    repro_version: str = ""
    schema_version: int = SCHEMA_VERSION
    payload_sha256: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Schema v2 packed-forest sidecar descriptor
    #: (``{"file", "sha256", "compressed"}``) or None; absent in v1
    #: manifests.
    packed: dict[str, Any] | None = None

    def to_manifest(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "app_name": self.app_name,
            "param_names": list(self.param_names),
            "scales": [int(s) for s in self.scales],
            "train_hash": self.train_hash,
            "n_train_rows": self.n_train_rows,
            "degraded": bool(self.degraded),
            "created_unix": float(self.created_unix),
            "repro_version": self.repro_version,
            "payload_sha256": self.payload_sha256,
            "metadata": dict(self.metadata),
            "packed": dict(self.packed) if self.packed else None,
        }

    @staticmethod
    def _parse_packed(
        manifest: Mapping[str, Any], where: Path
    ) -> dict[str, Any] | None:
        packed = manifest.get("packed")
        if packed is None:
            return None
        if not isinstance(packed, dict):
            raise ArtifactFormatError(
                f"{where}: manifest 'packed' entry must be an object or "
                f"null, got {type(packed).__name__}."
            )
        missing = sorted({"file", "sha256"} - set(packed))
        if missing:
            raise ArtifactFormatError(
                f"{where}: manifest 'packed' entry is missing {missing}."
            )
        return {
            "file": str(packed["file"]),
            "sha256": str(packed["sha256"]),
            "compressed": bool(packed.get("compressed", False)),
        }

    @classmethod
    def from_manifest(cls, manifest: object, where: Path) -> "ArtifactInfo":
        if not isinstance(manifest, dict):
            raise ArtifactFormatError(
                f"{where}: manifest must be a JSON object, "
                f"got {type(manifest).__name__}."
            )
        missing = sorted(set(_MANIFEST_KEYS) - set(manifest))
        if missing:
            raise ArtifactFormatError(
                f"{where}: manifest is missing keys {missing}."
            )
        try:
            version = int(manifest["schema_version"])
        except (TypeError, ValueError):
            raise ArtifactFormatError(
                f"{where}: schema_version "
                f"{manifest['schema_version']!r} is not an integer."
            ) from None
        if version > SCHEMA_VERSION:
            raise ArtifactVersionError(
                f"{where}: artifact schema version {version} is newer than "
                f"this build reads (<= {SCHEMA_VERSION}); upgrade repro to "
                "load it."
            )
        try:
            return cls(
                schema_version=version,
                kind=str(manifest["kind"]),
                app_name=str(manifest["app_name"]),
                param_names=tuple(str(n) for n in manifest["param_names"]),
                scales=tuple(int(s) for s in manifest["scales"]),
                train_hash=(
                    None
                    if manifest["train_hash"] is None
                    else str(manifest["train_hash"])
                ),
                n_train_rows=(
                    None
                    if manifest["n_train_rows"] is None
                    else int(manifest["n_train_rows"])
                ),
                degraded=bool(manifest["degraded"]),
                created_unix=float(manifest["created_unix"]),
                repro_version=str(manifest["repro_version"]),
                payload_sha256=str(manifest["payload_sha256"]),
                metadata=dict(manifest["metadata"] or {}),
                packed=cls._parse_packed(manifest, where),
            )
        except (TypeError, ValueError) as exc:
            raise ArtifactFormatError(
                f"{where}: malformed manifest: {exc}"
            ) from exc

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        when = (
            time.strftime(
                "%Y-%m-%d %H:%M:%S", time.gmtime(self.created_unix)
            )
            + "Z"
            if self.created_unix
            else "unknown"
        )
        lines = [
            f"kind        : {self.kind}"
            + (" (degraded fit)" if self.degraded else ""),
            f"application : {self.app_name}",
            f"params      : {', '.join(self.param_names)}",
            f"scales      : {list(self.scales)}",
            f"trained on  : {self.n_train_rows} rows "
            f"[{self.train_hash or 'unhashed'}]",
            f"created     : {when} (repro {self.repro_version}, "
            f"schema v{self.schema_version})",
        ]
        if self.packed:
            lines.append(
                f"packed      : {self.packed['file']} "
                f"({'compressed' if self.packed['compressed'] else 'mmap'})"
            )
        if self.metadata:
            pairs = ", ".join(f"{k}={v}" for k, v in self.metadata.items())
            lines.append(f"metadata    : {pairs}")
        return "\n".join(lines)


class ModelArtifact:
    """A fitted predictor plus its provenance manifest.

    Build one with :meth:`create` (from a live fitted model) or
    :meth:`load` (from disk); persist with :meth:`save`.  The uniform
    :meth:`predict_matrix` answers ``(configs, scales)`` queries for
    every parameter-aware kind, which is what
    :class:`~repro.serve.service.PredictionService` serves.
    """

    def __init__(self, predictor: object, info: ArtifactInfo) -> None:
        self.predictor = predictor
        self.info = info
        self._packed_pipeline: Any = None
        self._packed_attempted = False
        #: "sidecar" | "lazy" | "unavailable" | "unknown" (not yet tried)
        self._packed_state = "unknown"

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        predictor: object,
        app_name: str,
        param_names: Sequence[str],
        train: "ExecutionDataset | HistoryStore | None" = None,
        scales: Sequence[int] | None = None,
        metadata: Mapping[str, Any] | None = None,
        train_hash: str | None = None,
        n_train_rows: int | None = None,
    ) -> "ModelArtifact":
        """Wrap a fitted predictor with a provenance manifest.

        ``train`` (the training history) is the preferred provenance
        source — it fills ``train_hash``, ``n_train_rows``, and the
        scale list; pass ``train_hash``/``n_train_rows``/``scales``
        directly when the history is no longer in memory.  ``train``
        may also be a :class:`~repro.store.HistoryStore`: the hash,
        row count, and scales then come straight from the store
        manifest without materializing a single row.
        """
        from .. import __version__
        from ..store import HistoryStore

        kind = detect_kind(predictor)
        if isinstance(train, HistoryStore):
            train_hash = train_hash or train.fingerprint
            n_train_rows = n_train_rows or train.n_rows
            if scales is None:
                scales = train.scales
        elif train is not None:
            train_hash = train_hash or dataset_fingerprint(train)
            n_train_rows = n_train_rows or len(train)
            if scales is None:
                scales = [int(s) for s in train.scales]
        if scales is None:
            if isinstance(predictor, TwoLevelModel) and predictor.is_fitted:
                scales = predictor.effective_small_scales_
            elif isinstance(predictor, CurveFitBaseline):
                scales = predictor.small_scales
            else:
                scales = ()
        degraded = False
        if isinstance(predictor, TwoLevelModel):
            if not predictor.is_fitted:
                raise ConfigurationError(
                    "Cannot create an artifact from an unfitted model."
                )
            degraded = predictor.fit_report.degraded
        info = ArtifactInfo(
            kind=kind,
            app_name=str(app_name),
            param_names=tuple(str(n) for n in param_names),
            scales=tuple(int(s) for s in scales),
            train_hash=train_hash,
            n_train_rows=n_train_rows,
            degraded=degraded,
            created_unix=time.time(),
            repro_version=__version__,
            metadata=dict(metadata or {}),
        )
        return cls(predictor, info)

    # -- persistence -------------------------------------------------------

    def _payload(self) -> dict[str, Any]:
        from ..sched.wait import WaitTimePredictor

        if isinstance(self.predictor, TwoLevelModel):
            return {
                "format": KIND_TWO_LEVEL,
                "params": self.predictor.get_params(),
                "state": self.predictor.get_fitted_state(),
            }
        if isinstance(self.predictor, WaitTimePredictor):
            return {
                "format": KIND_WAIT_MODEL,
                "params": self.predictor.get_params(),
                "state": self.predictor.get_fitted_state(),
            }
        return {"format": self.info.kind, "predictor": self.predictor}

    def _packed_sidecar_bytes(
        self, packed: bool | str, compress: bool
    ) -> bytes | None:
        """Serialized ``packed.npz`` bytes, or None when the predictor
        is not packable.  ``packed=True`` makes unpackable predictors an
        error; ``"auto"`` degrades to a plain v2 artifact silently."""
        from ..core.packed_pipeline import save_npz_bytes

        if packed is False:
            return None
        if not isinstance(self.predictor, TwoLevelModel):
            if packed is True:
                raise ConfigurationError(
                    f"packed=True requires a TwoLevelModel predictor; "
                    f"this artifact holds {self.info.kind!r}."
                )
            return None
        try:
            pipeline = self.predictor.pack()
        except ConfigurationError:
            if packed is True:
                raise
            logger.debug(
                "predictor is not packable; saving without a sidecar",
                exc_info=True,
            )
            return None
        return save_npz_bytes(pipeline.to_arrays(), compress=compress)

    def save(
        self,
        path: str | Path,
        overwrite: bool = False,
        packed: bool | str = "auto",
        packed_compress: bool = False,
    ) -> Path:
        """Write the artifact directory; returns its path.

        ``packed`` controls the schema-v2 forest sidecar: ``"auto"``
        (default) writes ``packed.npz`` when the predictor is a packable
        :class:`TwoLevelModel` and silently skips it otherwise;
        ``True`` makes an unpackable predictor an error; ``False``
        never writes one.  ``packed_compress`` trades the zero-copy
        mmap load path for a ~5x smaller sidecar.
        """
        if packed not in (True, False, "auto"):
            raise ConfigurationError(
                f"packed must be True, False, or 'auto'; got {packed!r}."
            )
        path = Path(path)
        if (path / MANIFEST_NAME).exists() and not overwrite:
            raise ArtifactFormatError(
                f"{path}: an artifact already exists here "
                "(pass overwrite=True to replace it)."
            )
        sidecar = self._packed_sidecar_bytes(packed, bool(packed_compress))
        try:
            path.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(
                self._payload(), protocol=pickle.HIGHEST_PROTOCOL
            )
            # payload and sidecar first, manifest last: a crash mid-save
            # leaves a directory with no (or the old) manifest, never a
            # manifest describing files that aren't fully on disk
            atomic.write_file_bytes(
                path / PAYLOAD_NAME, payload, op="artifact.payload"
            )
            manifest = self.info.to_manifest()
            manifest["payload_sha256"] = _sha256(payload)
            if sidecar is not None:
                atomic.write_file_bytes(
                    path / PACKED_NAME, sidecar, op="artifact.packed"
                )
                manifest["packed"] = {
                    "file": PACKED_NAME,
                    "sha256": _sha256(sidecar),
                    "compressed": bool(packed_compress),
                }
            else:
                manifest["packed"] = None
                stale = path / PACKED_NAME
                if stale.exists():  # overwrite of a packed artifact
                    stale.unlink()
            atomic.atomic_replace(
                path / MANIFEST_NAME,
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                op="artifact.manifest",
            )
        except OSError as exc:
            raise ArtifactFormatError(
                f"{path}: cannot write artifact: {exc}"
            ) from exc
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise ArtifactFormatError(
                f"{path}: predictor is not picklable: {exc}"
            ) from exc
        self.info = ArtifactInfo.from_manifest(manifest, path)
        logger.debug(
            "saved %s artifact to %s%s", self.info.kind, path,
            " (+packed sidecar)" if sidecar is not None else "",
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ModelArtifact":
        """Read and verify an artifact directory."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ArtifactFormatError(
                f"{path}: not a model artifact (no {MANIFEST_NAME})."
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ArtifactFormatError(
                f"{path}: manifest is not valid JSON: {exc}"
            ) from exc
        info = ArtifactInfo.from_manifest(manifest, path)
        if info.kind not in KNOWN_KINDS:
            raise ArtifactFormatError(
                f"{path}: unknown artifact kind {info.kind!r}; this build "
                f"reads {sorted(KNOWN_KINDS)}. Refusing to unpickle the "
                "payload."
            )
        try:
            payload = (path / PAYLOAD_NAME).read_bytes()
        except OSError as exc:
            raise ArtifactFormatError(
                f"{path}: cannot read payload: {exc}"
            ) from exc
        digest = _sha256(payload)
        if digest != info.payload_sha256:
            raise ArtifactIntegrityError(
                f"{path}: payload checksum mismatch (manifest records "
                f"{info.payload_sha256[:12]}…, payload hashes to "
                f"{digest[:12]}…); refusing to unpickle."
            )
        try:
            decoded = pickle.loads(payload)
        except Exception as exc:  # pickle raises wildly varied types
            raise ArtifactFormatError(
                f"{path}: payload does not unpickle: {exc}"
            ) from exc
        predictor = cls._decode_predictor(decoded, path)
        artifact = cls(predictor, info)
        if info.packed is not None:
            artifact._attach_sidecar(path)
        logger.debug("loaded %s artifact from %s", info.kind, path)
        return artifact

    def _attach_sidecar(self, path: Path) -> None:
        """Verify the packed sidecar's checksum and build the packed
        pipeline from it (mmap'd when the sidecar is uncompressed).

        Any problem — missing file, checksum mismatch, arrays that do
        not match the unpickled model — is corruption of a file the
        manifest vouches for, so it raises
        :class:`ArtifactIntegrityError` rather than degrading silently.
        """
        from ..core.packed_pipeline import (
            PackedPipeline,
            load_npz_arrays,
        )

        assert self.info.packed is not None
        sidecar_path = path / self.info.packed["file"]
        try:
            data = sidecar_path.read_bytes()
        except OSError as exc:
            raise ArtifactIntegrityError(
                f"{path}: packed sidecar unreadable: {exc}"
            ) from exc
        digest = _sha256(data)
        if digest != self.info.packed["sha256"]:
            raise ArtifactIntegrityError(
                f"{path}: packed sidecar checksum mismatch (manifest "
                f"records {self.info.packed['sha256'][:12]}…, sidecar "
                f"hashes to {digest[:12]}…)."
            )
        try:
            arrays = load_npz_arrays(sidecar_path)
            self._packed_pipeline = PackedPipeline.from_arrays(
                arrays, self.predictor
            )
        except (
            ReproError, OSError, ValueError, KeyError, zipfile.BadZipFile,
        ) as exc:
            raise ArtifactIntegrityError(
                f"{path}: packed sidecar does not match the payload: "
                f"{exc}"
            ) from exc
        self._packed_attempted = True
        self._packed_state = "sidecar"

    @property
    def packed_pipeline(self) -> Any:
        """The packed serving pipeline, or None when unavailable.

        Loaded eagerly from the schema-v2 sidecar when one exists;
        otherwise (v1 artifacts, in-memory artifacts) packed lazily
        from the predictor on first access.  Unpackable predictors
        (baselines, non-forest interpolators) yield None — callers fall
        back to the object path.
        """
        if not self._packed_attempted:
            self._packed_attempted = True
            if isinstance(self.predictor, TwoLevelModel):
                try:
                    self._packed_pipeline = self.predictor.pack()
                    self._packed_state = "lazy"
                except ConfigurationError:
                    logger.debug(
                        "artifact predictor is not packable; using the "
                        "object path", exc_info=True,
                    )
                    self._packed_state = "unavailable"
            else:
                self._packed_state = "unavailable"
        return self._packed_pipeline

    @property
    def packed_state(self) -> str:
        """Where packed predictions would come from: ``"sidecar"``
        (mmap'd schema-v2 arrays), ``"lazy"`` (packed in memory),
        ``"unavailable"``, or ``"unknown"`` (not yet requested)."""
        return self._packed_state

    @staticmethod
    def _decode_predictor(decoded: object, path: Path) -> object:
        if not isinstance(decoded, dict) or "format" not in decoded:
            raise ArtifactFormatError(
                f"{path}: payload is not an artifact payload dict."
            )
        if decoded["format"] == KIND_TWO_LEVEL:
            try:
                model = TwoLevelModel(**decoded["params"])
                return model.set_fitted_state(decoded["state"])
            except (KeyError, TypeError, ConfigurationError) as exc:
                raise ArtifactFormatError(
                    f"{path}: two-level payload is malformed: {exc}"
                ) from exc
        if decoded["format"] == KIND_WAIT_MODEL:
            from ..sched.wait import WaitTimePredictor

            try:
                model = WaitTimePredictor(**decoded["params"])
                return model.set_fitted_state(decoded["state"])
            except (KeyError, TypeError, ConfigurationError) as exc:
                raise ArtifactFormatError(
                    f"{path}: wait-model payload is malformed: {exc}"
                ) from exc
        try:
            return decoded["predictor"]
        except KeyError:
            raise ArtifactFormatError(
                f"{path}: payload has no predictor."
            ) from None

    # -- prediction --------------------------------------------------------

    @property
    def servable(self) -> bool:
        """True when the artifact answers (params, scale) queries."""
        return self.info.kind in (KIND_TWO_LEVEL, KIND_DIRECT_ML)

    def predict_matrix(
        self, X: np.ndarray, scales: Sequence[int]
    ) -> np.ndarray:
        """Uniform ``(n_configs, n_scales)`` prediction across kinds."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.info.param_names):
            raise PredictionRequestError(
                f"X must have shape (n, {len(self.info.param_names)}) for "
                f"parameters {list(self.info.param_names)}."
            )
        scales = [int(s) for s in scales]
        if self.info.kind == KIND_TWO_LEVEL:
            return self.predictor.predict(X, scales)
        if self.info.kind == KIND_DIRECT_ML:
            return np.column_stack(
                [self.predictor.predict(X, s) for s in scales]
            )
        raise PredictionRequestError(
            f"Artifact kind {self.info.kind!r} has no parameter model and "
            "cannot answer (params, scale) queries."
        )

    def predict_wait(
        self,
        observations: Sequence[Mapping[str, Any]],
        quantiles: Sequence[float] = (),
    ) -> dict[str, Any]:
        """Queue-wait predictions for ``wait-model`` artifacts.

        Returns ``{"wait_seconds": [...]}`` plus a ``"quantiles"`` matrix
        when quantiles are requested.  Other kinds refuse.
        """
        if self.info.kind != KIND_WAIT_MODEL:
            raise PredictionRequestError(
                f"Artifact kind {self.info.kind!r} is not a wait model."
            )
        if quantiles:
            waits, bands = self.predictor.predict_with_quantiles(
                observations, quantiles=quantiles
            )
            return {
                "wait_seconds": waits.tolist(),
                "quantiles": [float(q) for q in quantiles],
                "wait_quantiles": bands.tolist(),
            }
        return {
            "wait_seconds": self.predictor.predict(observations).tolist()
        }
