"""Versioned on-disk persistence of fitted models.

An *artifact* is a self-describing directory holding one fitted
predictor::

    artifact/
        manifest.json   # schema version, provenance, payload checksum
        payload.pkl     # the fitted estimator state (pickle)

The manifest is plain JSON so operators can inspect an artifact without
unpickling anything; the payload carries the numpy-backed fitted state
(interpolation forests, multitask-lasso scalability fits, cluster
labels, scalers, :class:`~repro.robustness.report.FitReport`, ...).
Loading verifies, in order:

1. the manifest decodes and has every required key
   (:class:`~repro.errors.ArtifactFormatError` otherwise),
2. the schema version is one this build reads
   (:class:`~repro.errors.ArtifactVersionError` on artifacts from the
   future),
3. the payload's SHA-256 matches the manifest
   (:class:`~repro.errors.ArtifactIntegrityError` on bit rot or
   truncation).

:class:`TwoLevelModel` artifacts are stored through the model's
persistence hooks (``get_params`` / ``get_fitted_state``) rather than by
pickling the object wholesale, so the payload survives refactors of the
class's non-fitted surface.  Round-trips are bit-exact: a loaded
artifact predicts the same floats as the in-process model it was saved
from.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..baselines import CurveFitBaseline, DirectMLBaseline, EnsembleOfBaselines
from ..core import TwoLevelModel
from ..data.dataset import ExecutionDataset
from ..data.io import dataset_fingerprint
from ..errors import (
    ArtifactFormatError,
    ArtifactIntegrityError,
    ArtifactVersionError,
    ConfigurationError,
    PredictionRequestError,
)
from ..log import get_logger
from ..store import atomic

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactInfo",
    "ModelArtifact",
    "detect_kind",
]

logger = get_logger("serve.artifacts")

#: Current artifact schema.  Bump on any manifest/payload layout change;
#: loaders accept every version <= this one.
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.pkl"

#: Predictor kinds and how :meth:`ModelArtifact.predict_matrix`
#: dispatches on them.  ``curve-fit`` artifacts persist fine but cannot
#: answer (params, scale) queries (they have no parameter model).
KIND_TWO_LEVEL = "two-level"
KIND_DIRECT_ML = "direct-ml"
KIND_CURVE_FIT = "curve-fit"
KIND_PICKLE = "pickle"

_MANIFEST_KEYS = (
    "schema_version",
    "kind",
    "app_name",
    "param_names",
    "scales",
    "train_hash",
    "n_train_rows",
    "degraded",
    "created_unix",
    "repro_version",
    "payload_sha256",
    "metadata",
)


def detect_kind(predictor: object) -> str:
    """Classify a predictor for artifact dispatch."""
    if isinstance(predictor, TwoLevelModel):
        return KIND_TWO_LEVEL
    if isinstance(predictor, (DirectMLBaseline, EnsembleOfBaselines)):
        return KIND_DIRECT_ML
    if isinstance(predictor, CurveFitBaseline):
        return KIND_CURVE_FIT
    return KIND_PICKLE


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class ArtifactInfo:
    """Parsed artifact manifest (everything except the payload)."""

    kind: str
    app_name: str
    param_names: tuple[str, ...]
    scales: tuple[int, ...]
    train_hash: str | None = None
    n_train_rows: int | None = None
    degraded: bool = False
    created_unix: float = 0.0
    repro_version: str = ""
    schema_version: int = SCHEMA_VERSION
    payload_sha256: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_manifest(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "app_name": self.app_name,
            "param_names": list(self.param_names),
            "scales": [int(s) for s in self.scales],
            "train_hash": self.train_hash,
            "n_train_rows": self.n_train_rows,
            "degraded": bool(self.degraded),
            "created_unix": float(self.created_unix),
            "repro_version": self.repro_version,
            "payload_sha256": self.payload_sha256,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_manifest(cls, manifest: object, where: Path) -> "ArtifactInfo":
        if not isinstance(manifest, dict):
            raise ArtifactFormatError(
                f"{where}: manifest must be a JSON object, "
                f"got {type(manifest).__name__}."
            )
        missing = sorted(set(_MANIFEST_KEYS) - set(manifest))
        if missing:
            raise ArtifactFormatError(
                f"{where}: manifest is missing keys {missing}."
            )
        try:
            version = int(manifest["schema_version"])
        except (TypeError, ValueError):
            raise ArtifactFormatError(
                f"{where}: schema_version "
                f"{manifest['schema_version']!r} is not an integer."
            ) from None
        if version > SCHEMA_VERSION:
            raise ArtifactVersionError(
                f"{where}: artifact schema version {version} is newer than "
                f"this build reads (<= {SCHEMA_VERSION}); upgrade repro to "
                "load it."
            )
        try:
            return cls(
                schema_version=version,
                kind=str(manifest["kind"]),
                app_name=str(manifest["app_name"]),
                param_names=tuple(str(n) for n in manifest["param_names"]),
                scales=tuple(int(s) for s in manifest["scales"]),
                train_hash=(
                    None
                    if manifest["train_hash"] is None
                    else str(manifest["train_hash"])
                ),
                n_train_rows=(
                    None
                    if manifest["n_train_rows"] is None
                    else int(manifest["n_train_rows"])
                ),
                degraded=bool(manifest["degraded"]),
                created_unix=float(manifest["created_unix"]),
                repro_version=str(manifest["repro_version"]),
                payload_sha256=str(manifest["payload_sha256"]),
                metadata=dict(manifest["metadata"] or {}),
            )
        except (TypeError, ValueError) as exc:
            raise ArtifactFormatError(
                f"{where}: malformed manifest: {exc}"
            ) from exc

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        when = (
            time.strftime(
                "%Y-%m-%d %H:%M:%S", time.gmtime(self.created_unix)
            )
            + "Z"
            if self.created_unix
            else "unknown"
        )
        lines = [
            f"kind        : {self.kind}"
            + (" (degraded fit)" if self.degraded else ""),
            f"application : {self.app_name}",
            f"params      : {', '.join(self.param_names)}",
            f"scales      : {list(self.scales)}",
            f"trained on  : {self.n_train_rows} rows "
            f"[{self.train_hash or 'unhashed'}]",
            f"created     : {when} (repro {self.repro_version}, "
            f"schema v{self.schema_version})",
        ]
        if self.metadata:
            pairs = ", ".join(f"{k}={v}" for k, v in self.metadata.items())
            lines.append(f"metadata    : {pairs}")
        return "\n".join(lines)


class ModelArtifact:
    """A fitted predictor plus its provenance manifest.

    Build one with :meth:`create` (from a live fitted model) or
    :meth:`load` (from disk); persist with :meth:`save`.  The uniform
    :meth:`predict_matrix` answers ``(configs, scales)`` queries for
    every parameter-aware kind, which is what
    :class:`~repro.serve.service.PredictionService` serves.
    """

    def __init__(self, predictor: object, info: ArtifactInfo) -> None:
        self.predictor = predictor
        self.info = info

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        predictor: object,
        app_name: str,
        param_names: Sequence[str],
        train: "ExecutionDataset | HistoryStore | None" = None,
        scales: Sequence[int] | None = None,
        metadata: Mapping[str, Any] | None = None,
        train_hash: str | None = None,
        n_train_rows: int | None = None,
    ) -> "ModelArtifact":
        """Wrap a fitted predictor with a provenance manifest.

        ``train`` (the training history) is the preferred provenance
        source — it fills ``train_hash``, ``n_train_rows``, and the
        scale list; pass ``train_hash``/``n_train_rows``/``scales``
        directly when the history is no longer in memory.  ``train``
        may also be a :class:`~repro.store.HistoryStore`: the hash,
        row count, and scales then come straight from the store
        manifest without materializing a single row.
        """
        from .. import __version__
        from ..store import HistoryStore

        kind = detect_kind(predictor)
        if isinstance(train, HistoryStore):
            train_hash = train_hash or train.fingerprint
            n_train_rows = n_train_rows or train.n_rows
            if scales is None:
                scales = train.scales
        elif train is not None:
            train_hash = train_hash or dataset_fingerprint(train)
            n_train_rows = n_train_rows or len(train)
            if scales is None:
                scales = [int(s) for s in train.scales]
        if scales is None:
            if isinstance(predictor, TwoLevelModel) and predictor.is_fitted:
                scales = predictor.effective_small_scales_
            elif isinstance(predictor, CurveFitBaseline):
                scales = predictor.small_scales
            else:
                scales = ()
        degraded = False
        if isinstance(predictor, TwoLevelModel):
            if not predictor.is_fitted:
                raise ConfigurationError(
                    "Cannot create an artifact from an unfitted model."
                )
            degraded = predictor.fit_report.degraded
        info = ArtifactInfo(
            kind=kind,
            app_name=str(app_name),
            param_names=tuple(str(n) for n in param_names),
            scales=tuple(int(s) for s in scales),
            train_hash=train_hash,
            n_train_rows=n_train_rows,
            degraded=degraded,
            created_unix=time.time(),
            repro_version=__version__,
            metadata=dict(metadata or {}),
        )
        return cls(predictor, info)

    # -- persistence -------------------------------------------------------

    def _payload(self) -> dict[str, Any]:
        if isinstance(self.predictor, TwoLevelModel):
            return {
                "format": KIND_TWO_LEVEL,
                "params": self.predictor.get_params(),
                "state": self.predictor.get_fitted_state(),
            }
        return {"format": self.info.kind, "predictor": self.predictor}

    def save(self, path: str | Path, overwrite: bool = False) -> Path:
        """Write the artifact directory; returns its path."""
        path = Path(path)
        if (path / MANIFEST_NAME).exists() and not overwrite:
            raise ArtifactFormatError(
                f"{path}: an artifact already exists here "
                "(pass overwrite=True to replace it)."
            )
        try:
            path.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(
                self._payload(), protocol=pickle.HIGHEST_PROTOCOL
            )
            # payload first, manifest last: a crash mid-save leaves a
            # directory with no (or the old) manifest, never a manifest
            # describing a payload that isn't fully on disk
            atomic.write_file_bytes(
                path / PAYLOAD_NAME, payload, op="artifact.payload"
            )
            manifest = self.info.to_manifest()
            manifest["payload_sha256"] = _sha256(payload)
            atomic.atomic_replace(
                path / MANIFEST_NAME,
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                op="artifact.manifest",
            )
        except OSError as exc:
            raise ArtifactFormatError(
                f"{path}: cannot write artifact: {exc}"
            ) from exc
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise ArtifactFormatError(
                f"{path}: predictor is not picklable: {exc}"
            ) from exc
        self.info = ArtifactInfo.from_manifest(manifest, path)
        logger.debug("saved %s artifact to %s", self.info.kind, path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ModelArtifact":
        """Read and verify an artifact directory."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ArtifactFormatError(
                f"{path}: not a model artifact (no {MANIFEST_NAME})."
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ArtifactFormatError(
                f"{path}: manifest is not valid JSON: {exc}"
            ) from exc
        info = ArtifactInfo.from_manifest(manifest, path)
        try:
            payload = (path / PAYLOAD_NAME).read_bytes()
        except OSError as exc:
            raise ArtifactFormatError(
                f"{path}: cannot read payload: {exc}"
            ) from exc
        digest = _sha256(payload)
        if digest != info.payload_sha256:
            raise ArtifactIntegrityError(
                f"{path}: payload checksum mismatch (manifest records "
                f"{info.payload_sha256[:12]}…, payload hashes to "
                f"{digest[:12]}…); refusing to unpickle."
            )
        try:
            decoded = pickle.loads(payload)
        except Exception as exc:  # pickle raises wildly varied types
            raise ArtifactFormatError(
                f"{path}: payload does not unpickle: {exc}"
            ) from exc
        predictor = cls._decode_predictor(decoded, path)
        logger.debug("loaded %s artifact from %s", info.kind, path)
        return cls(predictor, info)

    @staticmethod
    def _decode_predictor(decoded: object, path: Path) -> object:
        if not isinstance(decoded, dict) or "format" not in decoded:
            raise ArtifactFormatError(
                f"{path}: payload is not an artifact payload dict."
            )
        if decoded["format"] == KIND_TWO_LEVEL:
            try:
                model = TwoLevelModel(**decoded["params"])
                return model.set_fitted_state(decoded["state"])
            except (KeyError, TypeError, ConfigurationError) as exc:
                raise ArtifactFormatError(
                    f"{path}: two-level payload is malformed: {exc}"
                ) from exc
        try:
            return decoded["predictor"]
        except KeyError:
            raise ArtifactFormatError(
                f"{path}: payload has no predictor."
            ) from None

    # -- prediction --------------------------------------------------------

    @property
    def servable(self) -> bool:
        """True when the artifact answers (params, scale) queries."""
        return self.info.kind in (KIND_TWO_LEVEL, KIND_DIRECT_ML)

    def predict_matrix(
        self, X: np.ndarray, scales: Sequence[int]
    ) -> np.ndarray:
        """Uniform ``(n_configs, n_scales)`` prediction across kinds."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.info.param_names):
            raise PredictionRequestError(
                f"X must have shape (n, {len(self.info.param_names)}) for "
                f"parameters {list(self.info.param_names)}."
            )
        scales = [int(s) for s in scales]
        if self.info.kind == KIND_TWO_LEVEL:
            return self.predictor.predict(X, scales)
        if self.info.kind == KIND_DIRECT_ML:
            return np.column_stack(
                [self.predictor.predict(X, s) for s in scales]
            )
        raise PredictionRequestError(
            f"Artifact kind {self.info.kind!r} has no parameter model and "
            "cannot answer (params, scale) queries."
        )
