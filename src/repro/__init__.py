"""repro — reproduction of "Using Small-Scale History Data to Predict
Large-Scale Performance of HPC Application" (Zhou, Zhang, Sun, Sun;
IPDPSW 2020).

Subpackages
-----------
``repro.core``
    The paper's two-level model (interpolation random forests +
    clustered multitask-lasso scalability models).
``repro.ml``
    From-scratch numpy ML substrate (no scikit-learn dependency).
``repro.sim``
    Cluster simulator (roofline nodes, LogGP network, topologies,
    collective cost models) standing in for the paper's HPC platform.
``repro.apps``
    Parameterized application skeletons (stencil, N-body MD, CG, FFT).
``repro.data``
    Execution-history datasets, samplers, and scale splits.
``repro.baselines``
    Direct-ML extrapolation and curve-fitting comparison methods.
``repro.analysis``
    Experiment protocol and reporting used by the benchmark harness.
``repro.robustness``
    Fault injection, dataset sanitization, and fallback reporting.
``repro.serve``
    Model persistence (versioned artifacts), the model registry, and
    the batch/online prediction service + HTTP server.
``repro.campaign``
    Closed-loop, budget-aware history-collection campaigns
    (plan -> execute -> sanitize -> refit -> register) with resumable
    checkpointing and core-second ledger accounting.
``repro.sched``
    Scheduler intelligence: a seedable FCFS + EASY-backfill queue
    simulator, queue-wait-time prediction, streaming resource-waste
    reports, and cost-aware what-if planning over candidate scales.
``repro.errors``
    Structured exception taxonomy (everything derives from
    :class:`~repro.errors.ReproError`).
"""

from .core import TwoLevelModel
from .errors import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactIntegrityError,
    ArtifactVersionError,
    ConfigurationError,
    DataValidationError,
    DatasetFormatError,
    ExtrapolationError,
    FitDegenerateError,
    NotFittedError,
    PredictionRequestError,
    RegistryError,
    ReproError,
)

__version__ = "1.4.0"

__all__ = [
    "TwoLevelModel",
    "ReproError",
    "ConfigurationError",
    "DataValidationError",
    "DatasetFormatError",
    "ExtrapolationError",
    "FitDegenerateError",
    "NotFittedError",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactIntegrityError",
    "ArtifactVersionError",
    "RegistryError",
    "PredictionRequestError",
    "__version__",
]
