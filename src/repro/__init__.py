"""repro — reproduction of "Using Small-Scale History Data to Predict
Large-Scale Performance of HPC Application" (Zhou, Zhang, Sun, Sun;
IPDPSW 2020).

Subpackages
-----------
``repro.core``
    The paper's two-level model (interpolation random forests +
    clustered multitask-lasso scalability models).
``repro.ml``
    From-scratch numpy ML substrate (no scikit-learn dependency).
``repro.sim``
    Cluster simulator (roofline nodes, LogGP network, topologies,
    collective cost models) standing in for the paper's HPC platform.
``repro.apps``
    Parameterized application skeletons (stencil, N-body MD, CG, FFT).
``repro.data``
    Execution-history datasets, samplers, and scale splits.
``repro.baselines``
    Direct-ML extrapolation and curve-fitting comparison methods.
``repro.analysis``
    Experiment protocol and reporting used by the benchmark harness.
"""

from .core import TwoLevelModel

__version__ = "1.0.0"

__all__ = ["TwoLevelModel", "__version__"]
