"""Machine-readable record of every degradation a fit survived.

The graceful-degradation contract of the pipeline is *no silent
fallback*: whenever a component substitutes a weaker model or discards
data, it appends a :class:`FallbackEvent` to the :class:`FitReport`
exposed on :attr:`repro.core.TwoLevelModel.fit_report`.  Operators can
alert on ``report.degraded`` while still serving predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["FallbackEvent", "FitReport"]


@dataclass(frozen=True)
class FallbackEvent:
    """One degradation decision taken during fit or predict.

    Attributes
    ----------
    stage:
        Pipeline stage that degraded: ``"sanitize"``,
        ``"interpolation"``, or ``"extrapolation"``.
    kind:
        Stable machine-readable identifier of the fallback (e.g.
        ``"scale_dropped"``, ``"pooled_interpolator"``,
        ``"analytic_extrapolator"``).
    detail:
        Human-readable explanation.
    context:
        Structured payload (counts, scale numbers, cluster ids, ...).
    """

    stage: str
    kind: str
    detail: str
    context: dict[str, Any] = field(default_factory=dict)
    #: False for purely informational events (e.g. ``warm_start`` reuse)
    #: that must not mark the fit as degraded.
    degrades: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "kind": self.kind,
            "detail": self.detail,
            "context": dict(self.context),
            "degrades": self.degrades,
        }


@dataclass
class FitReport:
    """Ordered collection of the fallbacks taken while fitting a model."""

    events: list[FallbackEvent] = field(default_factory=list)

    def record(
        self,
        stage: str,
        kind: str,
        detail: str,
        degrades: bool = True,
        **context: Any,
    ) -> FallbackEvent:
        """Append (and return) a new event.

        ``degrades=False`` records an informational event (a warm-start
        reuse, say) that is listed in summaries but does not flip
        :attr:`degraded`.
        """
        event = FallbackEvent(
            stage=stage, kind=kind, detail=detail, context=context,
            degrades=degrades,
        )
        self.events.append(event)
        return event

    # -- queries -----------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when at least one *degrading* fallback was taken
        (informational events do not count)."""
        return any(e.degrades for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FallbackEvent]:
        return iter(self.events)

    def by_stage(self, stage: str) -> list[FallbackEvent]:
        return [e for e in self.events if e.stage == stage]

    def by_kind(self, kind: str) -> list[FallbackEvent]:
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> tuple[str, ...]:
        """Distinct event kinds, in first-occurrence order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.kind, None)
        return tuple(seen)

    # -- rendering ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "degraded": self.degraded,
            "events": [e.to_dict() for e in self.events],
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (empty fit -> one line)."""
        if not self.events:
            return "fit report: clean (no fallbacks)"
        lines = [f"fit report: {len(self.events)} fallback(s)"]
        for e in self.events:
            lines.append(f"  [{e.stage}] {e.kind}: {e.detail}")
        return "\n".join(lines)
