"""Deterministic fault injection for execution histories.

Turns a pristine simulated :class:`~repro.data.dataset.ExecutionDataset`
into the kind of history a production scheduler actually logs: failed
runs recorded as NaN, jobs killed at the time limit (censored), node
interference spikes, heavy-tailed timing noise, duplicated accounting
records, a decommissioned scale missing entirely, and repeat sets cut
short.  Used by the fault-tolerance benchmark (Ext. G) and the
robustness tests; the sanitizer (:mod:`repro.robustness.sanitize`) is
its adversary.

All faults are driven by one seeded generator, so a given
``(spec, seed, dataset)`` triple always yields the same dirty history.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

import numpy as np

from ..data.dataset import ExecutionDataset
from ..errors import ConfigurationError
from ..log import get_logger

__all__ = ["FaultSpec", "FaultLog", "FaultInjector", "corrupt_runtimes"]

logger = get_logger("robustness.faults")


@dataclass(frozen=True)
class FaultSpec:
    """Rates and shapes of the injected faults (all rates are row or
    group fractions in ``[0, 1]``).

    Attributes
    ----------
    nan_rate:
        Fraction of rows whose runtime becomes NaN (failed run with no
        usable measurement).
    censor_rate:
        Fraction of rows killed at a shared wall-clock limit.  The
        limit is the ``1 - censor_rate`` runtime quantile unless
        ``censor_limit`` pins it explicitly.  Killed rows record the
        limit itself (budget-driven censoring, not post-hoc clipping).
    censor_limit:
        Explicit time limit in seconds (optional).
    censor_retries:
        Resubmissions granted to each killed run.  Each retry redraws
        the runtime around the run's true (model) runtime and succeeds
        when it fits under the escalated limit; successful reruns are
        *appended* as new rows (the scheduler log keeps both the killed
        attempt and the rerun).
    censor_escalation:
        Limit multiplier per resubmission (>= 1; 1 = fixed limit).
    resubmit_sigma:
        Log-normal noise scale of redrawn rerun runtimes.
    spike_rate, spike_factor:
        Fraction of rows multiplied by ``spike_factor`` (node
        interference / congestion spike).
    heavy_tail_rate, heavy_tail_sigma:
        Fraction of rows multiplied by ``exp(|N(0,1)| * sigma)`` —
        log-normal right tail typical of shared-network interference.
    duplicate_rate:
        Fraction of rows appended again verbatim (double-logged
        accounting records).
    drop_scales:
        Number of scales removed from the history entirely (interior
        scales preferred, mimicking a decommissioned partition size).
    truncate_repeat_rate:
        Fraction of (config, scale) repeat groups reduced to a single
        surviving repeat.
    """

    nan_rate: float = 0.0
    censor_rate: float = 0.0
    censor_limit: float | None = None
    censor_retries: int = 0
    censor_escalation: float = 1.0
    resubmit_sigma: float = 0.05
    spike_rate: float = 0.0
    spike_factor: float = 8.0
    heavy_tail_rate: float = 0.0
    heavy_tail_sigma: float = 1.5
    duplicate_rate: float = 0.0
    drop_scales: int = 0
    truncate_repeat_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                v = getattr(self, f.name)
                if not 0.0 <= v <= 1.0:
                    raise ConfigurationError(
                        f"{f.name} must be in [0, 1]; got {v!r}"
                    )
        if self.spike_factor <= 0:
            raise ConfigurationError("spike_factor must be positive.")
        if self.heavy_tail_sigma < 0:
            raise ConfigurationError("heavy_tail_sigma must be >= 0.")
        if self.drop_scales < 0:
            raise ConfigurationError("drop_scales must be >= 0.")
        if self.censor_limit is not None and self.censor_limit <= 0:
            raise ConfigurationError("censor_limit must be positive.")
        if self.censor_retries < 0:
            raise ConfigurationError("censor_retries must be >= 0.")
        if self.censor_escalation < 1.0:
            raise ConfigurationError("censor_escalation must be >= 1.")
        if self.resubmit_sigma < 0:
            raise ConfigurationError("resubmit_sigma must be >= 0.")

    @classmethod
    def runtime_corruption(cls, rate: float) -> "FaultSpec":
        """Spec corrupting ``rate`` of rows, split evenly between NaN
        failures, interference spikes, and heavy-tailed noise — the
        Ext. G benchmark's definition of "X % runtime corruption"."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1]; got {rate!r}")
        third = rate / 3.0
        return cls(nan_rate=third, spike_rate=third, heavy_tail_rate=third)


@dataclass
class FaultLog:
    """What the injector actually touched (row counts per fault)."""

    affected: dict[str, int] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def total_affected(self) -> int:
        return sum(self.affected.values())

    def summary(self) -> str:
        if not self.affected:
            return "fault injection: no faults applied"
        parts = ", ".join(f"{k}={v}" for k, v in self.affected.items() if v)
        return f"fault injection: {parts or 'nothing touched'}"


class FaultInjector:
    """Apply a :class:`FaultSpec` to a dataset, deterministically.

    Parameters
    ----------
    spec:
        Fault rates; keyword overrides build/modify one in place, so
        ``FaultInjector(nan_rate=0.1, seed=3)`` works without
        constructing a spec first.
    seed:
        Seed of the private random stream.
    """

    def __init__(
        self,
        spec: FaultSpec | None = None,
        seed: int | None = 0,
        **overrides: Any,
    ) -> None:
        base = spec if spec is not None else FaultSpec()
        self.spec = replace(base, **overrides) if overrides else base
        self.seed = seed

    def inject(
        self, dataset: ExecutionDataset
    ) -> tuple[ExecutionDataset, FaultLog]:
        """Return ``(dirty, log)``; ``dataset`` itself is untouched."""
        rng = np.random.default_rng(self.seed)
        spec = self.spec
        log = FaultLog()

        X = dataset.X.copy()
        nprocs = dataset.nprocs.copy()
        runtime = dataset.runtime.copy()
        model_runtime = dataset.model_runtime.copy()
        rep = dataset.rep.copy()

        keep = np.ones(len(runtime), dtype=bool)

        # 1. Truncated repeat sets: some (config, scale) groups keep only
        #    their first repeat.
        if spec.truncate_repeat_rate > 0:
            groups: dict[bytes, list[int]] = {}
            for i in range(len(runtime)):
                key = X[i].tobytes() + nprocs[i].tobytes()
                groups.setdefault(key, []).append(i)
            multi = [rows for rows in groups.values() if len(rows) > 1]
            n_pick = int(round(spec.truncate_repeat_rate * len(multi)))
            lost = 0
            for gi in rng.permutation(len(multi))[:n_pick]:
                rows = multi[gi]
                keep[rows[1:]] = False
                lost += len(rows) - 1
            log.affected["truncate_repeats"] = lost
            log.details["truncated_groups"] = n_pick

        # 2. Dropped scales (decommissioned partition sizes); interior
        #    scales first so the history's range survives.
        if spec.drop_scales > 0:
            scales = [int(s) for s in np.unique(nprocs[keep])]
            interior = scales[1:-1] if len(scales) > 2 else list(scales)
            n_drop = min(spec.drop_scales, len(interior))
            chosen = sorted(
                int(interior[i])
                for i in rng.permutation(len(interior))[:n_drop]
            )
            dropped_rows = 0
            for s in chosen:
                rows = keep & (nprocs == s)
                dropped_rows += int(rows.sum())
                keep[rows] = False
            log.affected["drop_scales"] = dropped_rows
            log.details["dropped_scales"] = chosen

        # 3. Row-level runtime corruption over surviving rows.  NaN,
        #    spike, and heavy-tail sets are disjoint by construction.
        alive = np.nonzero(keep)[0]
        order = rng.permutation(alive)
        n_alive = len(alive)
        n_nan = int(round(spec.nan_rate * n_alive))
        n_spike = int(round(spec.spike_rate * n_alive))
        n_tail = int(round(spec.heavy_tail_rate * n_alive))
        nan_rows = order[:n_nan]
        spike_rows = order[n_nan : n_nan + n_spike]
        tail_rows = order[n_nan + n_spike : n_nan + n_spike + n_tail]

        runtime[nan_rows] = np.nan
        runtime[spike_rows] *= spec.spike_factor
        if n_tail:
            runtime[tail_rows] *= np.exp(
                np.abs(rng.standard_normal(n_tail)) * spec.heavy_tail_sigma
            )
        log.affected["nan_runtime"] = int(n_nan)
        log.affected["spike_runtime"] = int(n_spike)
        log.affected["heavy_tail_runtime"] = int(n_tail)

        # 4. Budget-driven censoring at a shared wall-clock limit (after
        #    spikes: an inflated run that exceeds the limit is exactly
        #    what gets killed).  A killed row records the limit; with
        #    ``censor_retries`` the run is resubmitted under an escalated
        #    limit, and a successful rerun is *appended* as a new row —
        #    schedulers log both the kill and the rerun.
        resub_rows: list[int] = []
        resub_runtimes: list[float] = []
        if spec.censor_rate > 0 or spec.censor_limit is not None:
            finite = keep & np.isfinite(runtime)
            if np.any(finite):
                if spec.censor_limit is not None:
                    limit = float(spec.censor_limit)
                else:
                    limit = float(
                        np.quantile(runtime[finite], 1.0 - spec.censor_rate)
                    )
                hit = finite & (runtime > limit)
                for i in np.nonzero(hit)[0]:
                    for attempt in range(1, spec.censor_retries + 1):
                        attempt_limit = limit * spec.censor_escalation**attempt
                        redrawn = float(
                            model_runtime[i]
                            * np.exp(
                                rng.standard_normal() * spec.resubmit_sigma
                            )
                        )
                        if redrawn <= attempt_limit:
                            resub_rows.append(int(i))
                            resub_runtimes.append(redrawn)
                            break
                runtime[hit] = limit
                log.affected["censor_runtime"] = int(hit.sum())
                log.affected["censor_resubmitted"] = len(resub_rows)
                log.details["censor_limit"] = limit
                log.details["censor_retries"] = spec.censor_retries

        # 5. Duplicated accounting records (appended verbatim).
        n_dup = int(round(spec.duplicate_rate * n_alive))
        dup_rows = rng.choice(alive, size=n_dup, replace=True) if n_dup else []
        log.affected["duplicate_rows"] = int(n_dup)

        sel = np.concatenate(
            [
                np.nonzero(keep)[0],
                np.asarray(resub_rows, int),
                np.asarray(dup_rows, int),
            ]
        )
        out_runtime = runtime[sel]
        out_rep = rep[sel].copy()
        if resub_rows:
            # Reruns carry their redrawn runtime and fresh repetition
            # indices so they never collide with the killed attempts.
            n_keep = int(keep.sum())
            rep_base = int(rep.max()) + 1 if len(rep) else 0
            for j, rt in enumerate(resub_runtimes):
                out_runtime[n_keep + j] = rt
                out_rep[n_keep + j] = rep_base + j
        dirty = ExecutionDataset(
            app_name=dataset.app_name,
            param_names=dataset.param_names,
            X=X[sel],
            nprocs=nprocs[sel],
            runtime=out_runtime,
            model_runtime=model_runtime[sel],
            rep=out_rep,
            wait_seconds=dataset.wait_seconds[sel],
        )
        logger.info("%s", log.summary())
        return dirty, log


def corrupt_runtimes(
    dataset: ExecutionDataset, rate: float, seed: int | None = 0
) -> tuple[ExecutionDataset, FaultLog]:
    """Convenience wrapper: ``rate`` of rows corrupted (NaN / spike /
    heavy tail in equal parts), deterministic in ``seed``."""
    injector = FaultInjector(FaultSpec.runtime_corruption(rate), seed=seed)
    return injector.inject(dataset)
