"""Deterministic fault injection for execution histories.

Turns a pristine simulated :class:`~repro.data.dataset.ExecutionDataset`
into the kind of history a production scheduler actually logs: failed
runs recorded as NaN, jobs killed at the time limit (censored), node
interference spikes, heavy-tailed timing noise, duplicated accounting
records, a decommissioned scale missing entirely, and repeat sets cut
short.  Used by the fault-tolerance benchmark (Ext. G) and the
robustness tests; the sanitizer (:mod:`repro.robustness.sanitize`) is
its adversary.

All faults are driven by one seeded generator, so a given
``(spec, seed, dataset)`` triple always yields the same dirty history.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

import numpy as np

from ..data.dataset import ExecutionDataset
from ..errors import ConfigurationError
from ..log import get_logger

__all__ = ["FaultSpec", "FaultLog", "FaultInjector", "corrupt_runtimes"]

logger = get_logger("robustness.faults")


@dataclass(frozen=True)
class FaultSpec:
    """Rates and shapes of the injected faults (all rates are row or
    group fractions in ``[0, 1]``).

    Attributes
    ----------
    nan_rate:
        Fraction of rows whose runtime becomes NaN (failed run with no
        usable measurement).
    censor_rate:
        Fraction of rows clipped at a shared time limit.  The limit is
        the ``1 - censor_rate`` runtime quantile unless
        ``censor_limit`` pins it explicitly.
    censor_limit:
        Explicit time limit in seconds (optional).
    spike_rate, spike_factor:
        Fraction of rows multiplied by ``spike_factor`` (node
        interference / congestion spike).
    heavy_tail_rate, heavy_tail_sigma:
        Fraction of rows multiplied by ``exp(|N(0,1)| * sigma)`` —
        log-normal right tail typical of shared-network interference.
    duplicate_rate:
        Fraction of rows appended again verbatim (double-logged
        accounting records).
    drop_scales:
        Number of scales removed from the history entirely (interior
        scales preferred, mimicking a decommissioned partition size).
    truncate_repeat_rate:
        Fraction of (config, scale) repeat groups reduced to a single
        surviving repeat.
    """

    nan_rate: float = 0.0
    censor_rate: float = 0.0
    censor_limit: float | None = None
    spike_rate: float = 0.0
    spike_factor: float = 8.0
    heavy_tail_rate: float = 0.0
    heavy_tail_sigma: float = 1.5
    duplicate_rate: float = 0.0
    drop_scales: int = 0
    truncate_repeat_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                v = getattr(self, f.name)
                if not 0.0 <= v <= 1.0:
                    raise ConfigurationError(
                        f"{f.name} must be in [0, 1]; got {v!r}"
                    )
        if self.spike_factor <= 0:
            raise ConfigurationError("spike_factor must be positive.")
        if self.heavy_tail_sigma < 0:
            raise ConfigurationError("heavy_tail_sigma must be >= 0.")
        if self.drop_scales < 0:
            raise ConfigurationError("drop_scales must be >= 0.")
        if self.censor_limit is not None and self.censor_limit <= 0:
            raise ConfigurationError("censor_limit must be positive.")

    @classmethod
    def runtime_corruption(cls, rate: float) -> "FaultSpec":
        """Spec corrupting ``rate`` of rows, split evenly between NaN
        failures, interference spikes, and heavy-tailed noise — the
        Ext. G benchmark's definition of "X % runtime corruption"."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1]; got {rate!r}")
        third = rate / 3.0
        return cls(nan_rate=third, spike_rate=third, heavy_tail_rate=third)


@dataclass
class FaultLog:
    """What the injector actually touched (row counts per fault)."""

    affected: dict[str, int] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def total_affected(self) -> int:
        return sum(self.affected.values())

    def summary(self) -> str:
        if not self.affected:
            return "fault injection: no faults applied"
        parts = ", ".join(f"{k}={v}" for k, v in self.affected.items() if v)
        return f"fault injection: {parts or 'nothing touched'}"


class FaultInjector:
    """Apply a :class:`FaultSpec` to a dataset, deterministically.

    Parameters
    ----------
    spec:
        Fault rates; keyword overrides build/modify one in place, so
        ``FaultInjector(nan_rate=0.1, seed=3)`` works without
        constructing a spec first.
    seed:
        Seed of the private random stream.
    """

    def __init__(
        self,
        spec: FaultSpec | None = None,
        seed: int | None = 0,
        **overrides: Any,
    ) -> None:
        base = spec if spec is not None else FaultSpec()
        self.spec = replace(base, **overrides) if overrides else base
        self.seed = seed

    def inject(
        self, dataset: ExecutionDataset
    ) -> tuple[ExecutionDataset, FaultLog]:
        """Return ``(dirty, log)``; ``dataset`` itself is untouched."""
        rng = np.random.default_rng(self.seed)
        spec = self.spec
        log = FaultLog()

        X = dataset.X.copy()
        nprocs = dataset.nprocs.copy()
        runtime = dataset.runtime.copy()
        model_runtime = dataset.model_runtime.copy()
        rep = dataset.rep.copy()

        keep = np.ones(len(runtime), dtype=bool)

        # 1. Truncated repeat sets: some (config, scale) groups keep only
        #    their first repeat.
        if spec.truncate_repeat_rate > 0:
            groups: dict[bytes, list[int]] = {}
            for i in range(len(runtime)):
                key = X[i].tobytes() + nprocs[i].tobytes()
                groups.setdefault(key, []).append(i)
            multi = [rows for rows in groups.values() if len(rows) > 1]
            n_pick = int(round(spec.truncate_repeat_rate * len(multi)))
            lost = 0
            for gi in rng.permutation(len(multi))[:n_pick]:
                rows = multi[gi]
                keep[rows[1:]] = False
                lost += len(rows) - 1
            log.affected["truncate_repeats"] = lost
            log.details["truncated_groups"] = n_pick

        # 2. Dropped scales (decommissioned partition sizes); interior
        #    scales first so the history's range survives.
        if spec.drop_scales > 0:
            scales = [int(s) for s in np.unique(nprocs[keep])]
            interior = scales[1:-1] if len(scales) > 2 else list(scales)
            n_drop = min(spec.drop_scales, len(interior))
            chosen = sorted(
                int(interior[i])
                for i in rng.permutation(len(interior))[:n_drop]
            )
            dropped_rows = 0
            for s in chosen:
                rows = keep & (nprocs == s)
                dropped_rows += int(rows.sum())
                keep[rows] = False
            log.affected["drop_scales"] = dropped_rows
            log.details["dropped_scales"] = chosen

        # 3. Row-level runtime corruption over surviving rows.  NaN,
        #    spike, and heavy-tail sets are disjoint by construction.
        alive = np.nonzero(keep)[0]
        order = rng.permutation(alive)
        n_alive = len(alive)
        n_nan = int(round(spec.nan_rate * n_alive))
        n_spike = int(round(spec.spike_rate * n_alive))
        n_tail = int(round(spec.heavy_tail_rate * n_alive))
        nan_rows = order[:n_nan]
        spike_rows = order[n_nan : n_nan + n_spike]
        tail_rows = order[n_nan + n_spike : n_nan + n_spike + n_tail]

        runtime[nan_rows] = np.nan
        runtime[spike_rows] *= spec.spike_factor
        if n_tail:
            runtime[tail_rows] *= np.exp(
                np.abs(rng.standard_normal(n_tail)) * spec.heavy_tail_sigma
            )
        log.affected["nan_runtime"] = int(n_nan)
        log.affected["spike_runtime"] = int(n_spike)
        log.affected["heavy_tail_runtime"] = int(n_tail)

        # 4. Censoring at a shared time limit (after spikes: an inflated
        #    run that exceeds the limit is exactly what gets killed).
        if spec.censor_rate > 0 or spec.censor_limit is not None:
            finite = keep & np.isfinite(runtime)
            if np.any(finite):
                if spec.censor_limit is not None:
                    limit = float(spec.censor_limit)
                else:
                    limit = float(
                        np.quantile(runtime[finite], 1.0 - spec.censor_rate)
                    )
                hit = finite & (runtime > limit)
                runtime[hit] = limit
                log.affected["censor_runtime"] = int(hit.sum())
                log.details["censor_limit"] = limit

        # 5. Duplicated accounting records (appended verbatim).
        n_dup = int(round(spec.duplicate_rate * n_alive))
        dup_rows = rng.choice(alive, size=n_dup, replace=True) if n_dup else []
        log.affected["duplicate_rows"] = int(n_dup)

        sel = np.concatenate([np.nonzero(keep)[0], np.asarray(dup_rows, int)])
        dirty = ExecutionDataset(
            app_name=dataset.app_name,
            param_names=dataset.param_names,
            X=X[sel],
            nprocs=nprocs[sel],
            runtime=runtime[sel],
            model_runtime=model_runtime[sel],
            rep=rep[sel],
        )
        logger.info("%s", log.summary())
        return dirty, log


def corrupt_runtimes(
    dataset: ExecutionDataset, rate: float, seed: int | None = 0
) -> tuple[ExecutionDataset, FaultLog]:
    """Convenience wrapper: ``rate`` of rows corrupted (NaN / spike /
    heavy tail in equal parts), deterministic in ``seed``."""
    injector = FaultInjector(FaultSpec.runtime_corruption(rate), seed=seed)
    return injector.inject(dataset)
