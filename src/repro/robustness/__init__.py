"""Robustness layer: fault injection, dataset sanitization, and the
fallback reporting that keeps the two-level pipeline serving predictions
on dirty history data.

* :class:`FaultInjector` / :class:`FaultSpec` — turn a pristine history
  into a realistic dirty one (NaN/censored runtimes, spikes, duplicate
  records, missing scales, truncated repeats).
* :func:`validate_dataset` / :func:`sanitize_dataset` — detect and
  repair exactly those faults, with per-rule reports.
* :class:`FitReport` / :class:`FallbackEvent` — machine-readable record
  of every graceful-degradation decision a model fit took.
"""

from .faults import FaultInjector, FaultLog, FaultSpec, corrupt_runtimes
from .report import FallbackEvent, FitReport
from .sanitize import (
    ROW_LOCAL_RULES,
    RuleResult,
    SanitizeReport,
    ValidationReport,
    drop_censored_rows,
    drop_invalid_rows,
    sanitize_dataset,
    validate_dataset,
)

__all__ = [
    "FaultInjector",
    "FaultLog",
    "FaultSpec",
    "corrupt_runtimes",
    "FallbackEvent",
    "FitReport",
    "ROW_LOCAL_RULES",
    "RuleResult",
    "SanitizeReport",
    "ValidationReport",
    "drop_censored_rows",
    "drop_invalid_rows",
    "sanitize_dataset",
    "validate_dataset",
]
