"""Dataset validation and sanitization for dirty execution histories.

Real HPC history logs contain failed runs (NaN or censored runtimes),
duplicated records, and interference spikes.  :func:`validate_dataset`
detects these without modifying anything and returns a per-rule report;
:func:`sanitize_dataset` applies the safe repairs (dropping corrupt
rows, deduplicating, removing spikes) and reports exactly what it
removed.  With ``repair="impute"`` the runtime-only defects
(NaN/censored runtimes) are *filled from their repeat group's median*
instead of dropped, keeping thin scales fittable; every imputation is
counted in the report.

Rules (identifiers are stable — tests and operators key on them):

===================== ========= =======================================
rule                  severity  trigger
===================== ========= =======================================
``nonfinite_params``  error     a parameter value is NaN/inf
``nonfinite_runtime`` error     a recorded runtime is NaN/inf
``censored_runtime``  warning   runtime clipped at a shared time limit
``duplicate_row``     warning   identical (params, scale, rep, runtime)
``outlier_runtime``   warning   > ``spike_ratio`` x its repeat group's
                                minimum (interference spike)
``sparse_scale``      warning   a scale has < ``min_scale_runs`` rows
===================== ========= =======================================

``sparse_scale`` is report-only: the two-level model degrades around
missing scales itself (see :mod:`repro.core.two_level`), so the
sanitizer never silently shrinks the scale axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..data.dataset import ExecutionDataset
from ..errors import ConfigurationError, DataValidationError
from ..log import get_logger

__all__ = [
    "RuleResult",
    "ValidationReport",
    "SanitizeReport",
    "ROW_LOCAL_RULES",
    "validate_dataset",
    "sanitize_dataset",
    "drop_invalid_rows",
    "drop_censored_rows",
]

logger = get_logger("robustness.sanitize")

#: Severity per rule identifier.
RULE_SEVERITY = {
    "nonfinite_params": "error",
    "nonfinite_runtime": "error",
    "censored_runtime": "warning",
    "duplicate_row": "warning",
    "outlier_runtime": "warning",
    "sparse_scale": "warning",
}


@dataclass(frozen=True)
class RuleResult:
    """Outcome of one validation rule."""

    rule: str
    severity: str
    n_rows: int
    row_indices: tuple[int, ...]
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "n_rows": self.n_rows,
            "row_indices": list(self.row_indices),
            "message": self.message,
        }


@dataclass
class ValidationReport:
    """Per-rule findings over one dataset (nothing modified)."""

    n_rows: int
    results: list[RuleResult] = field(default_factory=list)

    @property
    def violations(self) -> list[RuleResult]:
        return [r for r in self.results if r.n_rows > 0]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity rule fired (warnings allowed)."""
        return not any(r.severity == "error" for r in self.violations)

    @property
    def clean(self) -> bool:
        """True when no rule fired at all."""
        return not self.violations

    def by_rule(self, rule: str) -> RuleResult | None:
        for r in self.results:
            if r.rule == rule:
                return r
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_rows": self.n_rows,
            "ok": self.ok,
            "clean": self.clean,
            "results": [r.to_dict() for r in self.results],
        }

    def summary(self) -> str:
        if self.clean:
            return f"validation: clean ({self.n_rows} rows, all rules pass)"
        lines = [
            f"validation: {len(self.violations)} rule(s) fired "
            f"over {self.n_rows} rows "
            f"({'errors present' if not self.ok else 'warnings only'})"
        ]
        for r in self.violations:
            lines.append(
                f"  {r.severity:<7s} {r.rule:<18s} {r.n_rows:>5d} rows  {r.message}"
            )
        return "\n".join(lines)

    def raise_on_error(self) -> None:
        """Raise :class:`DataValidationError` if an error rule fired."""
        bad = [r for r in self.violations if r.severity == "error"]
        if bad:
            msgs = "; ".join(f"{r.rule}: {r.message}" for r in bad)
            raise DataValidationError(f"Dataset failed validation — {msgs}")


@dataclass
class SanitizeReport:
    """What :func:`sanitize_dataset` removed or repaired, per rule."""

    rows_in: int
    rows_out: int
    dropped: dict[str, int] = field(default_factory=dict)
    validation: ValidationReport | None = None
    imputed: dict[str, int] = field(default_factory=dict)

    @property
    def rows_dropped(self) -> int:
        return self.rows_in - self.rows_out

    @property
    def rows_imputed(self) -> int:
        return sum(self.imputed.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "dropped": dict(self.dropped),
            "imputed": dict(self.imputed),
        }

    def merge(self, other: "SanitizeReport") -> "SanitizeReport":
        """Combine two chunk-level reports into one aggregate.

        Row counts add and per-rule drop/impute counters sum, so a
        chunked ETL pass (see :mod:`repro.store.etl`) reports exactly
        what a whole-dataset pass over the concatenation of clean chunks
        would.  Per-chunk :class:`ValidationReport` details are not
        aggregatable row-index-wise and are dropped from the merge.
        """
        dropped = dict(self.dropped)
        for rule, n in other.dropped.items():
            dropped[rule] = dropped.get(rule, 0) + n
        imputed = dict(self.imputed)
        for rule, n in other.imputed.items():
            imputed[rule] = imputed.get(rule, 0) + n
        return SanitizeReport(
            rows_in=self.rows_in + other.rows_in,
            rows_out=self.rows_out + other.rows_out,
            dropped=dropped,
            validation=None,
            imputed=imputed,
        )

    def summary(self) -> str:
        if not self.rows_dropped and not self.rows_imputed:
            return f"sanitize: clean ({self.rows_in} rows kept)"
        parts = []
        if self.rows_dropped:
            per_rule = ", ".join(
                f"{rule}={n}" for rule, n in self.dropped.items() if n
            )
            parts.append(
                f"dropped {self.rows_dropped}/{self.rows_in} rows "
                f"({per_rule})"
            )
        if self.rows_imputed:
            per_rule = ", ".join(
                f"{rule}={n}" for rule, n in self.imputed.items() if n
            )
            parts.append(
                f"imputed {self.rows_imputed} rows from repeat-group "
                f"medians ({per_rule})"
            )
        return "sanitize: " + "; ".join(parts)


# -- rule detectors ----------------------------------------------------------
#
# Each detector returns a boolean mask over the dataset's rows, computed
# only over rows still alive (``alive`` mask) so that e.g. the outlier
# rule does not key on repeats already discarded as NaN.


def _mask_nonfinite_params(ds: ExecutionDataset, alive: np.ndarray) -> np.ndarray:
    return alive & ~np.isfinite(ds.X).all(axis=1)


def _mask_nonfinite_runtime(ds: ExecutionDataset, alive: np.ndarray) -> np.ndarray:
    return alive & ~np.isfinite(ds.runtime)


def _mask_censored(
    ds: ExecutionDataset,
    alive: np.ndarray,
    censor_limit: float | None,
    min_repeats: int = 3,
) -> np.ndarray:
    """Rows whose runtime sits at a shared ceiling.

    With an explicit ``censor_limit`` every runtime >= the limit is
    censored.  Without one, censoring is inferred when the *maximum*
    finite runtime repeats exactly (bit-identical) at least
    ``min_repeats`` times — independent measurements never collide
    exactly, but jobs killed at a time limit all record the limit.
    """
    runtime = ds.runtime
    finite = alive & np.isfinite(runtime)
    if censor_limit is not None:
        return finite & (runtime >= censor_limit)
    if not np.any(finite):
        return np.zeros(len(ds), dtype=bool)
    vmax = runtime[finite].max()
    at_max = finite & (runtime == vmax)
    if int(at_max.sum()) >= min_repeats:
        return at_max
    return np.zeros(len(ds), dtype=bool)


def _mask_duplicates(ds: ExecutionDataset, alive: np.ndarray) -> np.ndarray:
    """Later copies of byte-identical (params, scale, rep, runtime) rows."""
    mask = np.zeros(len(ds), dtype=bool)
    seen: set[bytes] = set()
    for i in np.nonzero(alive)[0]:
        key = (
            ds.X[i].tobytes()
            + ds.nprocs[i].tobytes()
            + ds.rep[i].tobytes()
            + ds.runtime[i].tobytes()
        )
        if key in seen:
            mask[i] = True
        else:
            seen.add(key)
    return mask


def _mask_outliers(
    ds: ExecutionDataset, alive: np.ndarray, spike_ratio: float
) -> np.ndarray:
    """Interference spikes: a repeat > ``spike_ratio`` x its (config,
    scale) group's minimum.  Groups need >= 2 finite repeats — with a
    single observation there is no within-group evidence."""
    runtime = ds.runtime
    usable = alive & np.isfinite(runtime)
    groups: dict[bytes, list[int]] = {}
    for i in np.nonzero(usable)[0]:
        key = ds.X[i].tobytes() + ds.nprocs[i].tobytes()
        groups.setdefault(key, []).append(i)
    mask = np.zeros(len(ds), dtype=bool)
    for rows in groups.values():
        if len(rows) < 2:
            continue
        ref = min(runtime[i] for i in rows)
        if ref <= 0:
            continue
        for i in rows:
            if runtime[i] > spike_ratio * ref:
                mask[i] = True
    return mask


def _sparse_scales(
    ds: ExecutionDataset, alive: np.ndarray, min_scale_runs: int
) -> tuple[np.ndarray, list[int]]:
    mask = np.zeros(len(ds), dtype=bool)
    sparse: list[int] = []
    nprocs = ds.nprocs
    for s in np.unique(nprocs[alive]):
        rows = alive & (nprocs == s)
        if int(rows.sum()) < min_scale_runs:
            sparse.append(int(s))
            mask |= rows
    return mask, sparse


# -- public API --------------------------------------------------------------


def validate_dataset(
    dataset: ExecutionDataset,
    spike_ratio: float = 5.0,
    censor_limit: float | None = None,
    min_scale_runs: int = 2,
) -> ValidationReport:
    """Run every rule against ``dataset`` without modifying it.

    Parameters
    ----------
    spike_ratio:
        A repeat more than this factor above its (config, scale) group
        minimum is flagged as an interference spike.
    censor_limit:
        Known job time limit; when None, censoring is inferred from
        repeated bit-identical maxima.
    min_scale_runs:
        Scales with fewer rows are flagged ``sparse_scale``.
    """
    alive = np.ones(len(dataset), dtype=bool)
    report = ValidationReport(n_rows=len(dataset))

    def add(rule: str, mask: np.ndarray, message: str) -> None:
        idx = tuple(int(i) for i in np.nonzero(mask)[0])
        report.results.append(
            RuleResult(
                rule=rule,
                severity=RULE_SEVERITY[rule],
                n_rows=len(idx),
                row_indices=idx,
                message=message,
            )
        )

    bad_x = _mask_nonfinite_params(dataset, alive)
    add("nonfinite_params", bad_x, "parameter values are NaN/inf")
    bad_t = _mask_nonfinite_runtime(dataset, alive)
    add("nonfinite_runtime", bad_t, "recorded runtimes are NaN/inf")
    usable = alive & ~bad_x & ~bad_t

    cens = _mask_censored(dataset, usable, censor_limit)
    add(
        "censored_runtime",
        cens,
        "runtimes sit at a shared ceiling (job time limit?)",
    )
    dup = _mask_duplicates(dataset, usable)
    add("duplicate_row", dup, "byte-identical duplicate records")
    out = _mask_outliers(dataset, usable & ~cens & ~dup, spike_ratio)
    add(
        "outlier_runtime",
        out,
        f"repeats > {spike_ratio:g}x their repeat-group minimum",
    )
    sparse_mask, sparse = _sparse_scales(
        dataset, usable & ~cens & ~dup & ~out, min_scale_runs
    )
    add(
        "sparse_scale",
        sparse_mask,
        f"scales {sparse} have < {min_scale_runs} usable rows",
    )
    if not report.clean:
        logger.info("validation found issues: %s", report.summary())
    return report


#: Rules whose defect lives only in the runtime value — repairable by
#: imputation.  Everything else (corrupt params, duplicates, spikes)
#: is dropped in every repair mode.
_IMPUTABLE_RULES = ("nonfinite_runtime", "censored_runtime")

_DROP_RULES = (
    "nonfinite_params",
    "nonfinite_runtime",
    "censored_runtime",
    "duplicate_row",
    "outlier_runtime",
)


#: Rules whose verdict depends only on the row itself (given an explicit
#: censor limit) — the subset a chunked sanitizer can apply with results
#: independent of how the stream was chunked.  ``censored_runtime`` is
#: row-local only when ``censor_limit`` is given; without one, censoring
#: is *inferred* from the dataset-wide maximum and is chunk-dependent.
ROW_LOCAL_RULES = ("nonfinite_params", "nonfinite_runtime", "censored_runtime")


def sanitize_dataset(
    dataset: ExecutionDataset,
    spike_ratio: float = 5.0,
    censor_limit: float | None = None,
    min_scale_runs: int = 2,
    repair: str = "drop",
    rules: Sequence[str] | None = None,
) -> tuple[ExecutionDataset, SanitizeReport]:
    """Return a cleaned copy of ``dataset`` plus a per-rule repair report.

    ``repair="drop"`` (default) drops rows flagged by
    ``nonfinite_params``, ``nonfinite_runtime``, ``censored_runtime``,
    ``duplicate_row``, and ``outlier_runtime``.  ``repair="impute"``
    instead *fills* NaN/censored runtimes with the median runtime of
    the row's (config, scale) repeat group, computed over the group's
    un-flagged rows — keeping thin scales fittable where dropping would
    starve them; rows whose group has no usable repeat are still
    dropped.  Imputation counts are reported per rule on
    :attr:`SanitizeReport.imputed`.  ``sparse_scale`` findings are
    carried in the report but never cause drops (the model layer
    decides how to degrade around thin scales).

    ``rules`` restricts which rules may *drop or repair* rows (default:
    all of them); validation still runs every rule, so the report keeps
    the full picture.  The chunked ETL pipeline passes
    :data:`ROW_LOCAL_RULES` here so that the surviving rows are
    independent of chunk boundaries.
    """
    if repair not in ("drop", "impute"):
        raise ConfigurationError(
            f"repair must be 'drop' or 'impute', got {repair!r}."
        )
    if rules is None:
        active = _DROP_RULES
    else:
        unknown = sorted(set(rules) - set(_DROP_RULES))
        if unknown:
            raise ConfigurationError(
                f"Unknown sanitize rules {unknown}; valid rules are "
                f"{list(_DROP_RULES)}."
            )
        active = tuple(r for r in _DROP_RULES if r in set(rules))
    validation = validate_dataset(
        dataset,
        spike_ratio=spike_ratio,
        censor_limit=censor_limit,
        min_scale_runs=min_scale_runs,
    )

    flagged = np.zeros(len(dataset), dtype=bool)
    for rule in active:
        result = validation.by_rule(rule)
        if result is not None and result.n_rows:
            flagged[np.asarray(result.row_indices, dtype=np.int64)] = True

    # Median donor per (config, scale) repeat group, over clean rows only.
    medians: dict[bytes, float] = {}
    if repair == "impute":
        groups: dict[bytes, list[int]] = {}
        for i in np.nonzero(~flagged)[0]:
            key = dataset.X[i].tobytes() + dataset.nprocs[i].tobytes()
            groups.setdefault(key, []).append(i)
        medians = {
            key: float(np.median(dataset.runtime[rows]))
            for key, rows in groups.items()
        }

    drop = np.zeros(len(dataset), dtype=bool)
    handled = np.zeros(len(dataset), dtype=bool)
    runtime = dataset.runtime.copy()
    dropped: dict[str, int] = {}
    imputed: dict[str, int] = {}
    for rule in active:
        result = validation.by_rule(rule)
        dropped[rule] = 0
        if result is None or not result.n_rows:
            continue
        idx = np.asarray(result.row_indices, dtype=np.int64)
        fresh = idx[~handled[idx]]
        handled[fresh] = True
        if repair == "impute" and rule in _IMPUTABLE_RULES:
            for i in fresh:
                key = dataset.X[i].tobytes() + dataset.nprocs[i].tobytes()
                donor = medians.get(key)
                if donor is not None:
                    runtime[i] = donor
                    imputed[rule] = imputed.get(rule, 0) + 1
                else:
                    drop[i] = True
                    dropped[rule] += 1
        else:
            dropped[rule] = int(len(fresh))
            drop[fresh] = True

    repaired = dataset if not imputed else ExecutionDataset(
        app_name=dataset.app_name,
        param_names=dataset.param_names,
        X=dataset.X,
        nprocs=dataset.nprocs,
        runtime=runtime,
        model_runtime=dataset.model_runtime,
        rep=dataset.rep,
        wait_seconds=dataset.wait_seconds,
    )
    clean = repaired.select(~drop)
    report = SanitizeReport(
        rows_in=len(dataset),
        rows_out=len(clean),
        dropped=dropped,
        validation=validation,
        imputed=imputed,
    )
    if report.rows_dropped or report.rows_imputed:
        logger.info("%s", report.summary())
    return clean, report


def drop_censored_rows(
    dataset: ExecutionDataset, censor_limit: float | None = None
) -> tuple[ExecutionDataset, dict[str, int]]:
    """Drop rows recorded at a shared wall-clock ceiling, with
    resubmission accounting.

    A censored runtime is a lower bound, not a measurement; keeping it
    silently biases scalability fits downward.  Returns ``(clean,
    info)`` where ``info`` (empty when nothing fired) counts:

    * ``censored`` — rows dropped at the ceiling,
    * ``resubmitted`` — dropped rows whose (config, scale) group keeps
      at least one surviving finite repeat, i.e. the run was
      effectively resubmitted and the history retains a usable
      measurement for that point,
    * ``lost_groups`` — (config, scale) groups with no surviving row.
    """
    alive = np.isfinite(dataset.runtime)
    cens = _mask_censored(dataset, alive, censor_limit)
    if not np.any(cens):
        return dataset, {}
    survivor = alive & ~cens
    resubmitted = 0
    lost: set[bytes] = set()
    surviving_keys = {
        dataset.X[i].tobytes() + dataset.nprocs[i].tobytes()
        for i in np.nonzero(survivor)[0]
    }
    for i in np.nonzero(cens)[0]:
        key = dataset.X[i].tobytes() + dataset.nprocs[i].tobytes()
        if key in surviving_keys:
            resubmitted += 1
        else:
            lost.add(key)
    info = {
        "censored": int(cens.sum()),
        "resubmitted": resubmitted,
        "lost_groups": len(lost),
    }
    return dataset.select(~cens), info


def drop_invalid_rows(
    dataset: ExecutionDataset,
) -> tuple[ExecutionDataset, dict[str, int]]:
    """Minimal scrub used inside model fitting: drop rows whose runtime
    or parameters are non-finite.  Returns ``(clean, {rule: n})`` with
    only the rules that fired."""
    bad_x = ~np.isfinite(dataset.X).all(axis=1)
    bad_t = ~np.isfinite(dataset.runtime)
    counts: dict[str, int] = {}
    if np.any(bad_x):
        counts["nonfinite_params"] = int(bad_x.sum())
    if np.any(bad_t & ~bad_x):
        counts["nonfinite_runtime"] = int((bad_t & ~bad_x).sum())
    if not counts:
        return dataset, counts
    return dataset.select(~(bad_x | bad_t)), counts
