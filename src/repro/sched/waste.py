"""Streaming resource-waste detection over execution histories.

Waste, in the FRESCO sense, is allocation the user reserved but did not
convert into useful measurements:

* **over-request** — wall-clock between a run's actual runtime and the
  time limit it requested (``(limit - runtime)+ × cores``); the nodes
  are not held, but the scheduler *planned* around the request, which
  is what inflates everyone else's EASY reservations;
* **kill/censor waste** — core-seconds burned by attempts that timed
  out at the limit and produced no usable measurement (from
  :class:`~repro.sim.budget.AttemptTrace`), plus fully censored runs;
* **queue overhead** — core-seconds of reservation held while waiting
  (resubmission backoffs and scheduler queue waits).

Two ingestion paths share one aggregation:

* :meth:`WasteReport.add_records` — in-memory
  :class:`~repro.sim.ExecutionRecord` streams, with full per-attempt
  accounting when an ``AttemptTrace`` is present;
* :meth:`WasteReport.add_store` — a :class:`~repro.store.HistoryStore`,
  streamed chunk-by-chunk via ``iter_chunks`` so a million-row trace
  aggregates in O(chunk) memory.  Store rows carry no attempt trail, so
  kill waste is not reconstructable there; over-request waste needs the
  partition ``time_limit`` passed explicitly.

Aggregation is per ``(app, scale)`` bucket; cores are charged as
``nprocs`` (one process per core, the same accounting the campaign
ledger uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from ..errors import ConfigurationError
from ..sim.trace import ExecutionRecord

__all__ = ["WasteBucket", "WasteReport"]


@dataclass
class WasteBucket:
    """Waste tallies for one ``(app_name, nprocs)`` group (core-seconds)."""

    app_name: str
    nprocs: int
    runs: int = 0
    censored_runs: int = 0
    resubmitted_runs: int = 0
    used_core_seconds: float = 0.0
    wait_core_seconds: float = 0.0
    killed_core_seconds: float = 0.0
    requested_core_seconds: float = 0.0
    overrequest_core_seconds: float = 0.0

    @property
    def wasted_core_seconds(self) -> float:
        """Core-seconds that bought no measurement: kills + waits."""
        return self.killed_core_seconds + self.wait_core_seconds

    @property
    def waste_fraction(self) -> float:
        """Wasted share of everything consumed (0 when nothing ran)."""
        total = self.used_core_seconds + self.wasted_core_seconds
        return self.wasted_core_seconds / total if total > 0 else 0.0

    @property
    def overrequest_fraction(self) -> float:
        """Requested-but-unused share of the requested allocation."""
        if self.requested_core_seconds <= 0:
            return 0.0
        return self.overrequest_core_seconds / self.requested_core_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "app_name": self.app_name,
            "nprocs": self.nprocs,
            "runs": self.runs,
            "censored_runs": self.censored_runs,
            "resubmitted_runs": self.resubmitted_runs,
            "used_core_seconds": self.used_core_seconds,
            "wait_core_seconds": self.wait_core_seconds,
            "killed_core_seconds": self.killed_core_seconds,
            "requested_core_seconds": self.requested_core_seconds,
            "overrequest_core_seconds": self.overrequest_core_seconds,
            "wasted_core_seconds": self.wasted_core_seconds,
            "waste_fraction": self.waste_fraction,
            "overrequest_fraction": self.overrequest_fraction,
        }


class WasteReport:
    """Accumulate waste buckets from records and/or store chunks."""

    def __init__(self) -> None:
        self._buckets: dict[tuple[str, int], WasteBucket] = {}

    def _bucket(self, app_name: str, nprocs: int) -> WasteBucket:
        key = (str(app_name), int(nprocs))
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = WasteBucket(app_name=key[0], nprocs=key[1])
            self._buckets[key] = bucket
        return bucket

    # -- record path -------------------------------------------------------

    def add_records(self, records: Iterable[ExecutionRecord]) -> "WasteReport":
        """Aggregate in-memory records, with per-attempt kill accounting
        when the record carries an :class:`AttemptTrace`."""
        for r in records:
            cores = int(r.nprocs)
            b = self._bucket(r.app_name, cores)
            b.runs += 1
            if r.censored:
                b.censored_runs += 1
            if r.resubmitted:
                b.resubmitted_runs += 1
            b.wait_core_seconds += float(r.wait_seconds) * cores
            if r.attempts is not None:
                trace = r.attempts
                for a in trace:
                    if a.timed_out:
                        b.killed_core_seconds += float(a.runtime) * cores
                    if a.limit is not None:
                        b.requested_core_seconds += float(a.limit) * cores
                        if not a.timed_out:
                            b.overrequest_core_seconds += (
                                max(float(a.limit) - float(a.runtime), 0.0)
                                * cores
                            )
                if not trace.timed_out:
                    b.used_core_seconds += float(trace.final.runtime) * cores
            elif not r.censored:
                b.used_core_seconds += float(r.runtime) * cores
        return self

    # -- store path --------------------------------------------------------

    def add_chunk(
        self,
        app_name: str,
        chunk: Mapping[str, np.ndarray],
        time_limit: float | None = None,
    ) -> "WasteReport":
        """Aggregate one store chunk (dict of column arrays).

        Needs at least ``nprocs`` and ``runtime``; uses ``wait_seconds``
        when present.  ``time_limit`` is the partition limit every run
        requested — when given, over-request waste is charged as
        ``(limit - runtime)+`` per run.
        """
        nprocs = np.asarray(chunk["nprocs"], dtype=np.int64)
        runtime = np.asarray(chunk["runtime"], dtype=np.float64)
        wait = np.asarray(
            chunk.get("wait_seconds", np.zeros_like(runtime)),
            dtype=np.float64,
        )
        if time_limit is not None and time_limit <= 0:
            raise ConfigurationError("time_limit must be positive.")
        for scale in np.unique(nprocs):
            mask = nprocs == scale
            cores = int(scale)
            b = self._bucket(app_name, cores)
            n = int(mask.sum())
            rt = runtime[mask]
            ok = np.isfinite(rt)
            b.runs += n
            b.used_core_seconds += float(rt[ok].sum()) * cores
            b.wait_core_seconds += float(wait[mask].sum()) * cores
            if time_limit is not None:
                b.requested_core_seconds += float(time_limit) * cores * n
                over = np.maximum(time_limit - rt[ok], 0.0)
                b.overrequest_core_seconds += float(over.sum()) * cores
                # Runs recorded at (or past) the limit are censored kills.
                killed = int((rt[ok] >= time_limit).sum())
                b.censored_runs += killed
                b.killed_core_seconds += float(
                    rt[ok][rt[ok] >= time_limit].sum()
                ) * cores
                b.used_core_seconds -= float(
                    rt[ok][rt[ok] >= time_limit].sum()
                ) * cores
        return self

    def add_store(
        self,
        store,
        time_limit: float | None = None,
        chunk_rows: int | None = None,
    ) -> "WasteReport":
        """Stream a :class:`~repro.store.HistoryStore` through
        :meth:`add_chunk` — bounded memory at any row count."""
        kwargs: dict[str, Any] = {
            "columns": ("nprocs", "runtime", "wait_seconds"),
        }
        if chunk_rows is not None:
            kwargs["chunk_rows"] = int(chunk_rows)
        for chunk in store.iter_chunks(**kwargs):
            self.add_chunk(store.app_name, chunk, time_limit=time_limit)
        return self

    # -- results -----------------------------------------------------------

    @property
    def buckets(self) -> list[WasteBucket]:
        """Buckets sorted by (app, scale)."""
        return [self._buckets[k] for k in sorted(self._buckets)]

    def totals(self) -> dict[str, float]:
        out = {
            "runs": 0.0,
            "censored_runs": 0.0,
            "resubmitted_runs": 0.0,
            "used_core_seconds": 0.0,
            "wait_core_seconds": 0.0,
            "killed_core_seconds": 0.0,
            "requested_core_seconds": 0.0,
            "overrequest_core_seconds": 0.0,
            "wasted_core_seconds": 0.0,
        }
        for b in self._buckets.values():
            d = b.to_dict()
            for k in out:
                out[k] += float(d[k])
        total = out["used_core_seconds"] + out["wasted_core_seconds"]
        out["waste_fraction"] = (
            out["wasted_core_seconds"] / total if total > 0 else 0.0
        )
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": [b.to_dict() for b in self.buckets],
            "totals": self.totals(),
        }

    def summary(self) -> str:
        """Human-readable per-scale waste table."""
        lines = [
            f"{'app':<16s} {'scale':>7s} {'runs':>7s} {'used(ch)':>10s} "
            f"{'waited(ch)':>10s} {'killed(ch)':>10s} {'over-req(ch)':>12s} "
            f"{'waste%':>7s}"
        ]
        for b in self.buckets:
            lines.append(
                f"{b.app_name:<16s} {b.nprocs:>7d} {b.runs:>7d} "
                f"{b.used_core_seconds / 3600:>10.2f} "
                f"{b.wait_core_seconds / 3600:>10.2f} "
                f"{b.killed_core_seconds / 3600:>10.2f} "
                f"{b.overrequest_core_seconds / 3600:>12.2f} "
                f"{b.waste_fraction * 100:>6.1f}%"
            )
        t = self.totals()
        lines.append(
            f"{'TOTAL':<16s} {'':>7s} {int(t['runs']):>7d} "
            f"{t['used_core_seconds'] / 3600:>10.2f} "
            f"{t['wait_core_seconds'] / 3600:>10.2f} "
            f"{t['killed_core_seconds'] / 3600:>10.2f} "
            f"{t['overrequest_core_seconds'] / 3600:>12.2f} "
            f"{t['waste_fraction'] * 100:>6.1f}%"
        )
        return "\n".join(lines)


# Keep the dataclass import alive for type checkers that resolve the
# module lazily.
_ = field
