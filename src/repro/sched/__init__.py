"""Scheduler intelligence: queue simulation, wait prediction, waste
detection, and cost-aware what-if planning.

The paper's pipeline predicts *runtime at scale*; this package answers
the two questions production HPC operators actually ask on top of it
(the FRESCO framing): "how long will my job wait?" and "how much of my
allocation is wasted?" — plus the performance/cost trade-off question
they imply: "at what scale should I run?".

* :mod:`repro.sched.queue` — a deterministic, seedable FCFS +
  EASY-backfill queue simulator over a fixed node pool with a synthetic
  background workload.  Attach one to a
  :class:`~repro.sim.Executor` and every generated history row carries
  a realistic ``wait_seconds`` and a queue-state snapshot.
* :mod:`repro.sched.wait` — a wait-time predictor over queue-state
  features, reusing the forest stack (point + quantile predictions),
  persisted in the model registry as artifact ``kind="wait-model"``.
* :mod:`repro.sched.waste` — a streaming resource-waste report over
  records or :class:`~repro.store.HistoryStore` shards: requested vs.
  used core-seconds, over-requested time limits, kill/censor waste.
* :mod:`repro.sched.whatif` — sweep candidate scales through the
  runtime model + wait model + cost model and return the Pareto
  frontier of (scale, runtime, wait, turnaround, cost) with a
  recommended point under deadline/budget constraints.
"""

from .queue import QueueConfig, QueueObservation, QueueSimulator
from .wait import WAIT_FEATURES, WaitTimePredictor
from .waste import WasteBucket, WasteReport
from .whatif import CandidatePoint, WhatIfPlanner, WhatIfResult

__all__ = [
    "QueueConfig",
    "QueueObservation",
    "QueueSimulator",
    "WAIT_FEATURES",
    "WaitTimePredictor",
    "WasteBucket",
    "WasteReport",
    "CandidatePoint",
    "WhatIfPlanner",
    "WhatIfResult",
]
