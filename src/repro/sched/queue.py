"""Deterministic FCFS + EASY-backfill queue simulator.

The simulator models one partition of ``n_nodes`` nodes under a
synthetic background workload (Poisson arrivals, log-normal runtimes
and node counts, over-requested time limits).  The background schedule
is computed **once** at construction with the classic EASY policy —
first-come-first-served with a single reservation for the queue head,
plus backfilling of later jobs that cannot delay it — and then frozen.

Probes (:meth:`QueueSimulator.submit`) ask: *if one more job asking for
``nodes`` nodes and ``time_limit`` seconds were submitted at time t,
when would it start?*  The answer is the earliest window at/after t in
which the frozen background occupancy leaves ``nodes`` nodes free for
the full limit.  This is the **marginal-job approximation**: the probe
does not perturb the background schedule, so any number of probes are
independent, deterministic, and cheap (a range-minimum query over the
occupancy step function).  That is exactly the regime a wait-*predictor*
is trained for — one job entering an existing queue — and it keeps
generated histories reproducible regardless of probe order.

Everything is derived from ``QueueConfig.seed``; the same config always
yields the same background trace, schedule, and probe answers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ConfigurationError

__all__ = ["QueueConfig", "QueueObservation", "QueueSimulator"]


@dataclass(frozen=True)
class QueueConfig:
    """Shape of the simulated partition and its background load.

    Attributes
    ----------
    n_nodes:
        Size of the node pool jobs compete for.
    arrival_rate:
        Background jobs per second (Poisson arrivals).
    horizon:
        Length of the background trace in seconds; probes land in the
        interior of this window.
    runtime_median, runtime_sigma:
        Log-normal background job runtimes (median seconds, log-space
        sigma).
    nodes_median, nodes_sigma:
        Log-normal background job node counts (rounded, clipped to
        ``[1, n_nodes]``).
    limit_slack_min, limit_slack_max:
        Background jobs request ``runtime * U(min, max)`` as their time
        limit — the over-request the EASY reservation sees.
    seed:
        Everything (trace and schedule) derives from this.
    """

    n_nodes: int = 1024
    arrival_rate: float = 0.01
    horizon: float = 2 * 86400.0
    runtime_median: float = 1800.0
    runtime_sigma: float = 1.2
    nodes_median: float = 8.0
    nodes_sigma: float = 1.0
    limit_slack_min: float = 1.2
    limit_slack_max: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1.")
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive.")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive.")
        if self.runtime_median <= 0 or self.runtime_sigma < 0:
            raise ConfigurationError(
                "runtime_median must be positive and runtime_sigma >= 0."
            )
        if self.nodes_median < 1 or self.nodes_sigma < 0:
            raise ConfigurationError(
                "nodes_median must be >= 1 and nodes_sigma >= 0."
            )
        if self.limit_slack_min < 1.0:
            raise ConfigurationError("limit_slack_min must be >= 1.")
        if self.limit_slack_max < self.limit_slack_min:
            raise ConfigurationError(
                "limit_slack_max must be >= limit_slack_min."
            )


@dataclass(frozen=True)
class QueueObservation:
    """One probe's answer: the wait plus the queue state it saw.

    The feature fields are snapshots *at submission time* — exactly what
    a production wait-time predictor gets to see before the job starts —
    so a :class:`~repro.sched.wait.WaitTimePredictor` trains on them
    without leakage.
    """

    submit_time: float
    start_time: float
    nodes: int
    time_limit: float
    queue_depth: int
    free_nodes: int
    running_jobs: int
    pending_node_seconds: float

    @property
    def wait_seconds(self) -> float:
        return self.start_time - self.submit_time

    def features(self) -> dict[str, float]:
        """Flat feature dict (includes the ``wait_seconds`` label)."""
        return {
            "nodes": float(self.nodes),
            "time_limit": float(self.time_limit),
            "queue_depth": float(self.queue_depth),
            "free_nodes": float(self.free_nodes),
            "running_jobs": float(self.running_jobs),
            "pending_node_seconds": float(self.pending_node_seconds),
            "wait_seconds": float(self.wait_seconds),
        }


class QueueSimulator:
    """Frozen EASY-backfill background schedule + marginal-job probes.

    Construction simulates the whole background trace (see module
    docstring); every public query afterwards is read-only, so one
    simulator instance serves any number of concurrent probes.
    """

    def __init__(self, config: QueueConfig | None = None) -> None:
        self.config = config if config is not None else QueueConfig()
        self._build_trace()
        self._run_schedule()
        self._build_profile()

    # -- background trace --------------------------------------------------

    def _build_trace(self) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        gaps = rng.exponential(1.0 / cfg.arrival_rate, size=max(
            16, int(cfg.arrival_rate * cfg.horizon * 2)
        ))
        arrival = np.cumsum(gaps)
        arrival = arrival[arrival < cfg.horizon]
        n = len(arrival)
        runtime = cfg.runtime_median * np.exp(
            rng.normal(0.0, cfg.runtime_sigma, size=n)
        )
        nodes = np.clip(
            np.rint(
                cfg.nodes_median * np.exp(rng.normal(0.0, cfg.nodes_sigma, size=n))
            ).astype(np.int64),
            1,
            cfg.n_nodes,
        )
        slack = rng.uniform(cfg.limit_slack_min, cfg.limit_slack_max, size=n)
        self._arrival = arrival
        self._runtime = runtime
        self._nodes = nodes
        self._limit = runtime * slack

    # -- EASY schedule -----------------------------------------------------

    def _run_schedule(self) -> None:
        cfg = self.config
        n = len(self._arrival)
        arrival, runtime = self._arrival, self._runtime
        nodes, limit = self._nodes, self._limit
        start = np.empty(n, dtype=np.float64)
        free = cfg.n_nodes
        pending: list[int] = []  # queued job indices, FIFO
        running: list[tuple[float, int]] = []  # (actual end, idx) min-heap

        def launch(j: int, t: float) -> None:
            nonlocal free
            start[j] = t
            free -= int(nodes[j])
            heapq.heappush(running, (t + float(runtime[j]), j))

        def try_schedule(t: float) -> None:
            nonlocal free
            while pending and int(nodes[pending[0]]) <= free:
                launch(pending.pop(0), t)
            if not pending or not running:
                return
            # EASY reservation for the blocked head, computed from the
            # *requested limits* of running jobs (what a scheduler knows).
            head = pending[0]
            releases = sorted(
                (start[j] + float(limit[j]), int(nodes[j])) for _, j in running
            )
            avail = free
            shadow = np.inf
            for when, nd in releases:
                avail += nd
                if avail >= int(nodes[head]):
                    shadow = when
                    break
            spare = avail - int(nodes[head])
            # Backfill: a later job may start now iff it fits in the free
            # nodes and either finishes (by its limit) before the shadow
            # time or fits in the nodes the head leaves spare.
            k = 1
            while k < len(pending):
                j = pending[k]
                nd = int(nodes[j])
                if nd <= free and (
                    t + float(limit[j]) <= shadow or nd <= spare
                ):
                    pending.pop(k)
                    launch(j, t)
                    if not (t + float(limit[j]) <= shadow):
                        spare -= nd
                else:
                    k += 1

        i = 0
        while i < n or pending or running:
            next_arrival = float(arrival[i]) if i < n else np.inf
            next_end = running[0][0] if running else np.inf
            t = min(next_arrival, next_end)
            if not np.isfinite(t):
                break
            while running and running[0][0] <= t:
                _, j = heapq.heappop(running)
                free += int(nodes[j])
            while i < n and float(arrival[i]) <= t:
                pending.append(i)
                i += 1
            try_schedule(t)

        self._start = start
        self._end = start + runtime
        self._start_sorted = np.sort(start)
        self._end_sorted = np.sort(self._end)

    # -- occupancy profile + range-min index -------------------------------

    def _build_profile(self) -> None:
        cfg = self.config
        times = np.concatenate([self._start, self._end])
        deltas = np.concatenate(
            [-self._nodes.astype(np.int64), self._nodes.astype(np.int64)]
        )
        order = np.argsort(times, kind="stable")
        t_sorted = times[order]
        free_after = cfg.n_nodes + np.cumsum(deltas[order])
        if len(t_sorted):
            uniq, counts = np.unique(t_sorted, return_counts=True)
            last = np.cumsum(counts) - 1
            free_u = free_after[last]
        else:
            uniq = np.empty(0, dtype=np.float64)
            free_u = np.empty(0, dtype=np.int64)
        self._prof_t = uniq
        self._prof_free = free_u
        # Sparse table for O(1) range-min over the free-node profile.
        e = len(free_u)
        levels = max(1, e.bit_length())
        table = np.full((levels, max(e, 1)), cfg.n_nodes, dtype=np.int64)
        if e:
            table[0, :e] = free_u
            for k in range(1, levels):
                span = 1 << (k - 1)
                m = e - (1 << k) + 1
                if m <= 0:
                    break
                table[k, :m] = np.minimum(
                    table[k - 1, :m], table[k - 1, span : span + m]
                )
        self._rmq = table
        # Profile indices where free nodes rise (a completion) — the only
        # candidate start times besides the submit instant.
        if e:
            prev = np.concatenate(([cfg.n_nodes], free_u[:-1]))
            self._rise_idx = np.nonzero(free_u > prev)[0]
        else:
            self._rise_idx = np.empty(0, dtype=np.int64)

    def _range_min(self, lo: int, hi: int) -> int:
        """Min of ``_prof_free[lo:hi]`` (requires ``hi > lo``)."""
        k = (hi - lo).bit_length() - 1
        return int(
            min(self._rmq[k, lo], self._rmq[k, hi - (1 << k)])
        )

    def _window_min(self, a: float, b: float) -> int:
        """Minimum free nodes over the window ``[a, b)``."""
        e = len(self._prof_t)
        if e == 0:
            return self.config.n_nodes
        i0 = int(np.searchsorted(self._prof_t, a, side="right")) - 1
        i1 = int(np.searchsorted(self._prof_t, b, side="left"))
        m = self.config.n_nodes if i0 < 0 else np.iinfo(np.int64).max
        i0 = max(i0, 0)
        if i0 >= e:
            return int(self._prof_free[-1])
        i1 = min(max(i1, i0 + 1), e)
        return int(min(m, self._range_min(i0, i1)))

    # -- queries -----------------------------------------------------------

    def free_nodes_at(self, t: float) -> int:
        """Free nodes in the background schedule at time ``t``."""
        idx = int(np.searchsorted(self._prof_t, t, side="right")) - 1
        if idx < 0:
            return self.config.n_nodes
        return int(self._prof_free[idx])

    def queue_state_at(self, t: float) -> dict[str, float]:
        """Background queue features at time ``t`` (submission-visible)."""
        depth = int(
            np.searchsorted(self._arrival, t, side="right")
            - np.searchsorted(self._start_sorted, t, side="right")
        )
        running = int(
            np.searchsorted(self._start_sorted, t, side="right")
            - np.searchsorted(self._end_sorted, t, side="right")
        )
        mask = (self._arrival <= t) & (self._start > t)
        pending_ns = float(
            np.sum(self._nodes[mask].astype(np.float64) * self._limit[mask])
        )
        return {
            "queue_depth": float(depth),
            "free_nodes": float(self.free_nodes_at(t)),
            "running_jobs": float(running),
            "pending_node_seconds": pending_ns,
        }

    def probe(
        self, submit_time: float, nodes: int, time_limit: float
    ) -> QueueObservation:
        """Earliest start for a marginal job submitted at ``submit_time``."""
        nodes = int(nodes)
        if nodes < 1 or nodes > self.config.n_nodes:
            raise ConfigurationError(
                f"nodes must be in [1, {self.config.n_nodes}]; got {nodes}."
            )
        if time_limit <= 0:
            raise ConfigurationError("time_limit must be positive.")
        if submit_time < 0:
            raise ConfigurationError("submit_time must be >= 0.")
        start = None
        if self._window_min(submit_time, submit_time + time_limit) >= nodes:
            start = submit_time
        else:
            j0 = int(np.searchsorted(self._prof_t, submit_time, side="right"))
            k0 = int(np.searchsorted(self._rise_idx, j0, side="left"))
            for j in self._rise_idx[k0:]:
                t = float(self._prof_t[j])
                if self._window_min(t, t + time_limit) >= nodes:
                    start = t
                    break
            if start is None:
                # After the last background event every node is free.
                start = max(submit_time, float(self._prof_t[-1]))
        state = self.queue_state_at(submit_time)
        return QueueObservation(
            submit_time=float(submit_time),
            start_time=float(start),
            nodes=nodes,
            time_limit=float(time_limit),
            queue_depth=int(state["queue_depth"]),
            free_nodes=int(state["free_nodes"]),
            running_jobs=int(state["running_jobs"]),
            pending_node_seconds=state["pending_node_seconds"],
        )

    def submit(
        self, key: int, nodes: int, time_limit: float
    ) -> QueueObservation:
        """Probe at a submission time derived deterministically from
        ``key`` (an attempt seed): the same key always lands at the same
        instant of the background trace, so executor-generated histories
        are reproducible."""
        frac = (int(key) & 0xFFFFFFFF) / float(1 << 32)
        submit_time = (0.05 + 0.85 * frac) * self.config.horizon
        return self.probe(submit_time, nodes, time_limit)

    def sample_observations(
        self,
        n: int,
        seed: int = 0,
        nodes_range: tuple[int, int] = (1, 64),
        limit_range: tuple[float, float] = (600.0, 14400.0),
    ) -> list[QueueObservation]:
        """Draw ``n`` random probes — the training set generator for
        :class:`~repro.sched.wait.WaitTimePredictor`."""
        if n < 1:
            raise ConfigurationError("n must be >= 1.")
        lo, hi = int(nodes_range[0]), int(nodes_range[1])
        hi = min(hi, self.config.n_nodes)
        lo = min(lo, hi)
        rng = np.random.default_rng(seed)
        out = []
        for _ in range(n):
            key = int(rng.integers(0, 1 << 63))
            nodes = int(rng.integers(lo, hi + 1))
            limit = float(rng.uniform(limit_range[0], limit_range[1]))
            out.append(self.submit(key=key, nodes=nodes, time_limit=limit))
        return out

    # -- reporting ---------------------------------------------------------

    @property
    def n_background_jobs(self) -> int:
        return len(self._arrival)

    def stats(self) -> dict[str, Any]:
        """Background-schedule summary (sanity metrics for tests/docs)."""
        waits = self._start - self._arrival
        busy = float(
            np.sum(self._nodes.astype(np.float64) * self._runtime)
        )
        makespan = float(self._end.max() - self._arrival.min()) if len(
            self._arrival
        ) else 0.0
        util = busy / (self.config.n_nodes * makespan) if makespan else 0.0
        return {
            "n_jobs": int(len(self._arrival)),
            "mean_wait": float(waits.mean()) if len(waits) else 0.0,
            "max_wait": float(waits.max()) if len(waits) else 0.0,
            "p50_wait": float(np.median(waits)) if len(waits) else 0.0,
            "utilization": util,
            "makespan": makespan,
        }
