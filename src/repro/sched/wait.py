"""Queue-wait-time prediction on scheduler-visible features.

:class:`WaitTimePredictor` reuses the repo's forest stack
(:class:`~repro.ml.tree.RandomForestRegressor`) to regress
``log1p(wait_seconds)`` on the submission-time features a scheduler (or
:class:`~repro.sched.queue.QueueSimulator`) exposes: requested nodes and
time limit, queue depth, free nodes, running jobs, and pending
node-seconds.  Point predictions come from the forest mean; quantiles
come from the per-tree spread (``predict_all``), giving operators a
"your job will probably start within X" band rather than a bare number.

Inference runs through the arena kernels of
:class:`~repro.ml.tree.packed.PackedForest` (built once per fitted
forest, bit-identical to the object path by contract), so a wait lookup
inside a serving request costs microseconds, not milliseconds.

The predictor persists through the same ``get_params`` /
``get_fitted_state`` hooks as :class:`~repro.core.TwoLevelModel`, so
:class:`~repro.serve.artifacts.ModelArtifact` stores it as artifact
``kind="wait-model"`` without pickling the class wholesale — bit-exact
round-trips included.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..ml.tree import RandomForestRegressor
from ..ml.tree.packed import PackedForest, ordered_sum_axis0

__all__ = ["WAIT_FEATURES", "WaitTimePredictor"]

#: Canonical feature order the predictor trains and predicts on.
WAIT_FEATURES = (
    "nodes",
    "time_limit",
    "queue_depth",
    "free_nodes",
    "running_jobs",
    "pending_node_seconds",
)

#: Features whose scale spans orders of magnitude get a log1p transform.
_LOG_FEATURES = frozenset({"time_limit", "pending_node_seconds"})


class WaitTimePredictor:
    """Forest regressor over queue-state features (see module docstring).

    Parameters mirror the forest's; defaults are sized for a few
    thousand probes of one background trace.
    """

    def __init__(
        self,
        n_estimators: int = 64,
        max_depth: int | None = None,
        min_samples_leaf: int = 2,
        random_state: int = 0,
    ) -> None:
        if int(n_estimators) < 1:
            raise ConfigurationError("n_estimators must be >= 1.")
        if int(min_samples_leaf) < 1:
            raise ConfigurationError("min_samples_leaf must be >= 1.")
        self.n_estimators = int(n_estimators)
        self.max_depth = None if max_depth is None else int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.random_state = int(random_state)
        self._forest: RandomForestRegressor | None = None
        self._packed: PackedForest | None = None

    # -- feature handling --------------------------------------------------

    @staticmethod
    def feature_vector(state: Mapping[str, Any]) -> np.ndarray:
        """One feature row from a queue-state mapping (missing keys
        default to 0 — a cold, empty queue)."""
        return np.array(
            [float(state.get(name, 0.0)) for name in WAIT_FEATURES],
            dtype=np.float64,
        )

    @classmethod
    def feature_matrix(
        cls, observations: Iterable[Mapping[str, Any]] | np.ndarray
    ) -> np.ndarray:
        """Stack observations (queue-state dicts, or an already-built
        ``(n, len(WAIT_FEATURES))`` matrix) into the design matrix."""
        if isinstance(observations, np.ndarray):
            F = np.asarray(observations, dtype=np.float64)
            if F.ndim != 2 or F.shape[1] != len(WAIT_FEATURES):
                raise ConfigurationError(
                    f"Feature matrix must have shape (n, {len(WAIT_FEATURES)}) "
                    f"for features {list(WAIT_FEATURES)}."
                )
            return F
        rows = [cls.feature_vector(o) for o in observations]
        if not rows:
            raise ConfigurationError("No observations given.")
        return np.vstack(rows)

    @staticmethod
    def _transform(F: np.ndarray) -> np.ndarray:
        out = F.copy()
        for j, name in enumerate(WAIT_FEATURES):
            if name in _LOG_FEATURES:
                out[:, j] = np.log1p(np.maximum(out[:, j], 0.0))
        return out

    # -- fit/predict -------------------------------------------------------

    def fit(
        self,
        observations: Iterable[Mapping[str, Any]] | np.ndarray,
        waits: Sequence[float] | np.ndarray,
    ) -> "WaitTimePredictor":
        F = self.feature_matrix(observations)
        y = np.asarray(waits, dtype=np.float64)
        if y.shape != (F.shape[0],):
            raise ConfigurationError(
                f"waits must have shape ({F.shape[0]},); got {y.shape}."
            )
        if np.any(~np.isfinite(y)) or np.any(y < 0):
            raise ConfigurationError(
                "waits must be finite and non-negative."
            )
        forest = RandomForestRegressor(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            random_state=self.random_state,
        )
        forest.fit(self._transform(F), np.log1p(y))
        self._forest = forest
        self._packed = PackedForest.from_forest(forest)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._forest is not None

    def _require_fitted(self) -> PackedForest:
        if self._forest is None:
            raise NotFittedError(
                "WaitTimePredictor is not fitted; call fit() first."
            )
        if self._packed is None:
            self._packed = PackedForest.from_forest(self._forest)
        return self._packed

    def predict(
        self, observations: Iterable[Mapping[str, Any]] | np.ndarray
    ) -> np.ndarray:
        """Expected wait seconds per observation (never negative)."""
        packed = self._require_fitted()
        F = self._transform(self.feature_matrix(observations))
        return np.maximum(np.expm1(packed.predict(F)), 0.0)

    def predict_quantiles(
        self,
        observations: Iterable[Mapping[str, Any]] | np.ndarray,
        quantiles: Sequence[float] = (0.1, 0.5, 0.9),
    ) -> np.ndarray:
        """Per-observation wait quantiles from the per-tree ensemble
        spread, shape ``(n_observations, n_quantiles)``."""
        _, q = self.predict_with_quantiles(observations, quantiles)
        return q

    def predict_with_quantiles(
        self,
        observations: Iterable[Mapping[str, Any]] | np.ndarray,
        quantiles: Sequence[float] = (0.1, 0.5, 0.9),
    ) -> tuple[np.ndarray, np.ndarray]:
        """Point predictions and quantiles from ONE arena traversal.

        Returns ``(wait_seconds, quantile_matrix)``; the point estimate
        is bit-identical to :meth:`predict` (the per-tree matrix is
        reduced in the same order), so callers that need both — the
        what-if planner, ``POST /wait`` — pay a single forest walk.
        """
        qs = [float(q) for q in quantiles]
        if not qs or any(not 0.0 <= q <= 1.0 for q in qs):
            raise ConfigurationError("quantiles must lie in [0, 1].")
        packed = self._require_fitted()
        F = self._transform(self.feature_matrix(observations))
        per_tree_log = packed.predict_all(F)
        mean_log = ordered_sum_axis0(per_tree_log) / per_tree_log.shape[0]
        wait = np.maximum(np.expm1(mean_log), 0.0)
        per_tree = np.maximum(np.expm1(per_tree_log), 0.0)
        return wait, np.quantile(per_tree, qs, axis=0).T

    # -- persistence hooks (ModelArtifact protocol) ------------------------

    def get_params(self) -> dict[str, Any]:
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "random_state": self.random_state,
        }

    def get_fitted_state(self) -> dict[str, Any]:
        if self._forest is None:
            raise NotFittedError(
                "WaitTimePredictor is not fitted; call fit() first."
            )
        return {
            "features": list(WAIT_FEATURES),
            "forest": self._forest,
        }

    def set_fitted_state(self, state: Mapping[str, Any]) -> "WaitTimePredictor":
        features = tuple(state.get("features", ()))
        if features != WAIT_FEATURES:
            raise ConfigurationError(
                f"Persisted wait-model features {list(features)} do not "
                f"match this build's {list(WAIT_FEATURES)}."
            )
        forest = state.get("forest")
        if not isinstance(forest, RandomForestRegressor):
            raise ConfigurationError(
                "Persisted wait-model state has no fitted forest."
            )
        self._forest = forest
        self._packed = PackedForest.from_forest(forest)
        return self
