"""Cost-aware what-if planning over candidate scales.

Given a configuration ``x``, the runtime model already answers "how long
at scale p?".  :class:`WhatIfPlanner` completes the operator's question
— "at what scale *should* I run?" — by sweeping candidate scales
through:

* a **runtime predictor** (any callable mapping ``(x, scales)`` to a
  runtime vector — a packed forest pipeline, a
  :class:`~repro.core.TwoLevelModel`, or a test stub),
* an optional **wait model** (:class:`~repro.sched.wait.WaitTimePredictor`
  fed the current queue state, with the candidate's nodes/limit
  substituted in), and
* a **cost model**: ``core_hours = runtime × scale / 3600`` and
  ``turnaround = wait + runtime``.

The result is every candidate point, the Pareto frontier over
(cost, turnaround) — sorted by cost, strictly decreasing turnaround —
and a recommended point: the cheapest candidate satisfying the deadline
and core-hour budget, or the lowest-turnaround point (flagged
infeasible) when nothing satisfies them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from .wait import WaitTimePredictor

__all__ = ["CandidatePoint", "WhatIfResult", "WhatIfPlanner"]


@dataclass(frozen=True)
class CandidatePoint:
    """One evaluated scale: predicted timings and cost.

    ``wait_p90`` is populated only when a wait model is attached;
    ``meets_deadline`` / ``within_budget`` are ``True`` when the
    corresponding constraint was not given.
    """

    scale: int
    runtime: float
    wait: float
    wait_p90: float | None
    turnaround: float
    core_hours: float
    meets_deadline: bool
    within_budget: bool

    @property
    def feasible(self) -> bool:
        return self.meets_deadline and self.within_budget

    def to_dict(self) -> dict[str, Any]:
        return {
            "scale": self.scale,
            "runtime": self.runtime,
            "wait": self.wait,
            "wait_p90": self.wait_p90,
            "turnaround": self.turnaround,
            "core_hours": self.core_hours,
            "meets_deadline": self.meets_deadline,
            "within_budget": self.within_budget,
            "feasible": self.feasible,
        }


@dataclass(frozen=True)
class WhatIfResult:
    """Full sweep output: all points, the frontier, the recommendation."""

    points: tuple[CandidatePoint, ...]
    frontier: tuple[CandidatePoint, ...]
    recommended: CandidatePoint | None
    deadline: float | None
    budget_core_hours: float | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "points": [p.to_dict() for p in self.points],
            "frontier": [p.to_dict() for p in self.frontier],
            "recommended": (
                self.recommended.to_dict()
                if self.recommended is not None
                else None
            ),
            "deadline": self.deadline,
            "budget_core_hours": self.budget_core_hours,
        }


class WhatIfPlanner:
    """Sweep candidate scales and rank them by cost and turnaround.

    Parameters
    ----------
    runtime_predict:
        ``(x, scales) -> runtimes`` — predicted runtime (seconds) of
        configuration ``x`` at each scale.  ``x`` arrives as a 1-D
        float array, ``scales`` as a 1-D int array.
    wait_model:
        Optional fitted :class:`WaitTimePredictor`.  Without one, waits
        are taken verbatim from the queue state's ``wait_seconds`` key
        (or zero), identical across scales.
    nodes_for:
        Optional ``scale -> nodes`` mapping (e.g.
        :meth:`~repro.sim.MachineModel.nodes_for`) used to fill the
        wait model's ``nodes`` feature.  Defaults to identity.
    limit_margin:
        Requested time limit per candidate = ``runtime × limit_margin``
        (feeds the wait model's ``time_limit`` feature and mirrors how
        budget-aware executions pad their requests).
    """

    def __init__(
        self,
        runtime_predict: Callable[[np.ndarray, np.ndarray], np.ndarray],
        wait_model: WaitTimePredictor | None = None,
        nodes_for: Callable[[int], int] | None = None,
        limit_margin: float = 1.5,
    ) -> None:
        if not callable(runtime_predict):
            raise ConfigurationError("runtime_predict must be callable.")
        if wait_model is not None and not wait_model.is_fitted:
            raise ConfigurationError("wait_model must be fitted.")
        if limit_margin < 1.0:
            raise ConfigurationError("limit_margin must be >= 1.")
        self.runtime_predict = runtime_predict
        self.wait_model = wait_model
        self.nodes_for = nodes_for if nodes_for is not None else lambda s: s
        self.limit_margin = float(limit_margin)

    # -- evaluation --------------------------------------------------------

    def _waits(
        self,
        scales: np.ndarray,
        runtimes: np.ndarray,
        queue_state: Mapping[str, Any] | None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        state = dict(queue_state or {})
        if self.wait_model is None:
            w = float(state.get("wait_seconds", 0.0))
            return np.full(len(scales), max(w, 0.0)), None
        rows = []
        for scale, rt in zip(scales, runtimes):
            row = dict(state)
            row["nodes"] = int(self.nodes_for(int(scale)))
            row["time_limit"] = float(rt) * self.limit_margin
            rows.append(row)
        waits, q = self.wait_model.predict_with_quantiles(
            rows, quantiles=(0.9,)
        )
        return waits, q[:, 0]

    def evaluate(
        self,
        x: Sequence[float] | np.ndarray,
        scales: Sequence[int] | np.ndarray,
        queue_state: Mapping[str, Any] | None = None,
        deadline: float | None = None,
        budget_core_hours: float | None = None,
    ) -> WhatIfResult:
        """Sweep ``scales`` for configuration ``x``.

        ``deadline`` bounds *turnaround* (wait + runtime, seconds);
        ``budget_core_hours`` bounds the allocation charge.
        """
        xv = np.asarray(x, dtype=np.float64).ravel()
        sv = np.unique(np.asarray(scales, dtype=np.int64))
        if sv.size == 0:
            raise ConfigurationError("At least one candidate scale required.")
        if np.any(sv < 1):
            raise ConfigurationError("Scales must be positive integers.")
        if deadline is not None and deadline <= 0:
            raise ConfigurationError("deadline must be positive.")
        if budget_core_hours is not None and budget_core_hours <= 0:
            raise ConfigurationError("budget_core_hours must be positive.")

        runtimes = np.asarray(
            self.runtime_predict(xv, sv), dtype=np.float64
        ).ravel()
        if runtimes.shape != sv.shape:
            raise ConfigurationError(
                f"runtime_predict returned shape {runtimes.shape}; "
                f"expected {sv.shape}."
            )
        if np.any(~np.isfinite(runtimes)) or np.any(runtimes < 0):
            raise ConfigurationError(
                "runtime_predict returned non-finite or negative runtimes."
            )

        waits, p90 = self._waits(sv, runtimes, queue_state)

        points = []
        for i, scale in enumerate(sv):
            runtime = float(runtimes[i])
            wait = float(waits[i])
            turnaround = wait + runtime
            core_hours = runtime * int(scale) / 3600.0
            points.append(
                CandidatePoint(
                    scale=int(scale),
                    runtime=runtime,
                    wait=wait,
                    wait_p90=None if p90 is None else float(p90[i]),
                    turnaround=turnaround,
                    core_hours=core_hours,
                    meets_deadline=(
                        deadline is None or turnaround <= deadline
                    ),
                    within_budget=(
                        budget_core_hours is None
                        or core_hours <= budget_core_hours
                    ),
                )
            )

        frontier = self._pareto(points)
        recommended = self._recommend(points, frontier)
        return WhatIfResult(
            points=tuple(points),
            frontier=frontier,
            recommended=recommended,
            deadline=deadline,
            budget_core_hours=budget_core_hours,
        )

    # -- ranking -----------------------------------------------------------

    @staticmethod
    def _pareto(points: list[CandidatePoint]) -> tuple[CandidatePoint, ...]:
        """Non-dominated set over (core_hours ↓, turnaround ↓), returned
        sorted by cost ascending — turnaround is then strictly
        decreasing along the frontier."""
        ordered = sorted(points, key=lambda p: (p.core_hours, p.turnaround))
        frontier: list[CandidatePoint] = []
        best = np.inf
        for p in ordered:
            if p.turnaround < best:
                frontier.append(p)
                best = p.turnaround
        return tuple(frontier)

    @staticmethod
    def _recommend(
        points: list[CandidatePoint],
        frontier: tuple[CandidatePoint, ...],
    ) -> CandidatePoint | None:
        feasible = [p for p in frontier if p.feasible]
        if feasible:
            # Frontier is cost-sorted; first feasible point is cheapest.
            return feasible[0]
        feasible = [p for p in points if p.feasible]
        if feasible:
            return min(feasible, key=lambda p: p.core_hours)
        # Nothing satisfies the constraints: surface the fastest option
        # so the caller sees how far off the constraints are.
        if not points:
            return None
        return min(points, key=lambda p: p.turnaround)
