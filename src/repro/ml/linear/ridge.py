"""Ridge regression (L2-regularized least squares).

Solved in closed form via the regularized normal equations with a
Cholesky factorization; ``RidgeCV`` selects alpha by efficient
leave-one-out cross-validation using the SVD hat-matrix identity.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, RegressorMixin, check_is_fitted
from ..validation import check_array, check_X_y

__all__ = ["Ridge", "RidgeCV"]


class Ridge(BaseEstimator, RegressorMixin):
    """Linear model minimizing ``||y - Xw||^2 + alpha * ||w||^2``.

    The intercept, when fitted, is not penalized (data is centered first).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Ridge":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative.")
        X, y = check_X_y(X, y, multi_output=True)
        single_target = y.shape[1] == 1

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean(axis=0)
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = np.zeros(y.shape[1])
            Xc, yc = X, y

        n_features = X.shape[1]
        A = Xc.T @ Xc + self.alpha * np.eye(n_features)
        b = Xc.T @ yc
        try:
            coef = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            # alpha == 0 with singular design: fall back to minimum-norm.
            coef = np.linalg.lstsq(Xc, yc, rcond=None)[0]

        self.coef_ = coef.T[0] if single_target else coef.T
        self.intercept_ = (
            float(y_mean[0] - x_mean @ coef[:, 0])
            if single_target
            else y_mean - x_mean @ coef
        )
        self.n_features_in_ = n_features
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X @ np.asarray(self.coef_).T + self.intercept_


class RidgeCV(BaseEstimator, RegressorMixin):
    """Ridge with alpha chosen by closed-form leave-one-out CV.

    Uses the SVD identity: for ridge with hat matrix H(alpha), the LOO
    residual is ``e_i / (1 - H_ii)``, so all alphas are scored from one
    decomposition of the centered design.
    """

    def __init__(
        self,
        alphas: tuple[float, ...] = (0.01, 0.1, 1.0, 10.0, 100.0),
        fit_intercept: bool = True,
    ) -> None:
        self.alphas = alphas
        self.fit_intercept = fit_intercept

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeCV":
        if len(self.alphas) == 0:
            raise ValueError("alphas must be non-empty.")
        if any(a < 0 for a in self.alphas):
            raise ValueError("alphas must be non-negative.")
        X, y1 = check_X_y(X, y)

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y1.mean())
            Xc = X - x_mean
            yc = y1 - y_mean
        else:
            Xc, yc = X, y1

        U, s, _ = np.linalg.svd(Xc, full_matrices=False)
        Uty = U.T @ yc
        n = X.shape[0]

        best_alpha, best_err = None, np.inf
        for alpha in self.alphas:
            d = s**2 / (s**2 + alpha) if alpha > 0 else np.where(s > 0, 1.0, 0.0)
            # Diagonal of the hat matrix and fitted values under this alpha.
            h = np.einsum("ij,j,ij->i", U, d, U)
            fitted = U @ (d * Uty)
            denom = 1.0 - h
            # Guard exact-interpolation rows (h == 1) from division blowup.
            denom = np.where(np.abs(denom) < 1e-12, 1e-12, denom)
            loo = float(np.mean(((yc - fitted) / denom) ** 2))
            if loo < best_err:
                best_err, best_alpha = loo, alpha
        assert best_alpha is not None

        self.alpha_ = best_alpha
        self.loo_error_ = best_err
        inner = Ridge(alpha=best_alpha, fit_intercept=self.fit_intercept).fit(X, y1)
        self.coef_ = inner.coef_
        self.intercept_ = inner.intercept_
        self.n_features_in_ = X.shape[1]
        self._inner = inner
        _ = n  # documented for clarity; LOO uses all n rows
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        return self._inner.predict(X)
