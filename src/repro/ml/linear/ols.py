"""Ordinary least squares linear regression.

Solved via :func:`numpy.linalg.lstsq` (SVD-based), which returns the
minimum-norm solution for rank-deficient designs — important here because
the extrapolation level can refit tiny systems (5 small-scale points
against a selected basis) that are occasionally singular.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, RegressorMixin, check_is_fitted
from ..validation import check_array, check_X_y

__all__ = ["LinearRegression"]


class LinearRegression(BaseEstimator, RegressorMixin):
    """Least-squares linear model ``y = X @ coef_ + intercept_``.

    Parameters
    ----------
    fit_intercept:
        If True (default), center the data and fit an explicit intercept;
        if False the model is forced through the origin.
    sample_weight_supported:
        ``fit`` accepts an optional ``sample_weight`` vector; weighting is
        implemented by scaling rows with sqrt(w).
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LinearRegression":
        X, y = check_X_y(X, y, multi_output=True)
        single_target = y.shape[1] == 1

        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=np.float64)
            if w.shape != (X.shape[0],):
                raise ValueError("sample_weight must have shape (n_samples,)")
            if np.any(w < 0):
                raise ValueError("sample_weight must be non-negative")
            sw = np.sqrt(w)
        else:
            sw = None

        if self.fit_intercept:
            if sw is None:
                x_mean = X.mean(axis=0)
                y_mean = y.mean(axis=0)
            else:
                total = sw @ sw
                if total == 0:
                    raise ValueError("sample_weight sums to zero")
                x_mean = (sw**2) @ X / total
                y_mean = (sw**2) @ y / total
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = np.zeros(y.shape[1])
            Xc, yc = X, y

        if sw is not None:
            Xc = Xc * sw[:, None]
            yc = yc * sw[:, None]

        coef, _, rank, _ = np.linalg.lstsq(Xc, yc, rcond=None)
        self.rank_ = int(rank)
        self.coef_ = coef.T[0] if single_target else coef.T
        self.intercept_ = (
            float(y_mean[0] - x_mean @ coef[:, 0])
            if single_target
            else y_mean - x_mean @ coef
        )
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X @ np.asarray(self.coef_).T + self.intercept_
