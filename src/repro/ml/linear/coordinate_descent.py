"""Coordinate-descent solvers for L1-regularized linear models.

Implements the elastic-net family with the scikit-learn objective scaling

    (1 / (2 n)) * ||y - X w||^2
        + alpha * l1_ratio * ||w||_1
        + 0.5 * alpha * (1 - l1_ratio) * ||w||^2

so that ``alpha`` values are comparable across sample sizes.  Convergence
is certified by the duality gap, which unit tests also use to verify the
solver (a small gap is a machine-checkable optimality proof, not just a
heuristic stopping rule).
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, RegressorMixin, check_is_fitted
from ..validation import check_array, check_X_y

__all__ = ["ElasticNet", "Lasso", "LassoCV", "lasso_path"]


def _soft_threshold(x: float, t: float) -> float:
    """Scalar soft-thresholding operator S(x, t) = sign(x) max(|x|-t, 0)."""
    if x > t:
        return x - t
    if x < -t:
        return x + t
    return 0.0


def _enet_duality_gap(
    X: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    alpha_l1: float,
    alpha_l2: float,
) -> float:
    """Duality gap of the elastic-net problem at ``w``.

    Follows the standard construction: scale the residual to a dual
    feasible point and compare primal and dual objectives.  For pure ridge
    (``alpha_l1 == 0``) the gap formula degenerates, so callers should not
    use it there.
    """
    n = X.shape[0]
    r = y - X @ w
    primal = (
        (r @ r) / (2.0 * n)
        + alpha_l1 * np.abs(w).sum()
        + 0.5 * alpha_l2 * (w @ w)
    )
    # Dual variable: theta = r / n, scaled into the feasible set
    # |X^T theta - alpha_l2 * w| <= alpha_l1 (the l2 part shifts the
    # constraint by the ridge gradient).
    corr = X.T @ r / n - alpha_l2 * w
    max_corr = float(np.max(np.abs(corr))) if corr.size else 0.0
    scale = 1.0 if max_corr <= alpha_l1 else alpha_l1 / max_corr
    theta = (r / n) * scale
    dual = (
        -0.5 * n * (theta @ theta)
        + theta @ y
        - 0.5 * alpha_l2 * (w @ w) * scale**2
    )
    # With l2 term the dual above is a valid lower bound only approximately
    # when scaled; recompute conservatively for the scaled w implied:
    gap = primal - dual
    return float(max(gap, 0.0))


def _enet_coordinate_descent(
    X: np.ndarray,
    y: np.ndarray,
    alpha_l1: float,
    alpha_l2: float,
    w: np.ndarray,
    max_iter: int,
    tol: float,
) -> tuple[np.ndarray, float, int]:
    """Cyclic coordinate descent on centered data.

    Parameters are the *unnormalized* penalty levels: ``alpha_l1 = alpha *
    l1_ratio`` and ``alpha_l2 = alpha * (1 - l1_ratio)``.

    Returns ``(w, gap, n_iter)``.  The residual vector is maintained
    incrementally so each coordinate update is O(n).
    """
    n_samples, n_features = X.shape
    col_sq = np.einsum("ij,ij->j", X, X) / n_samples  # (1/n) ||X_j||^2
    r = y - X @ w
    gap = np.inf
    y_norm_tol = tol * float(y @ y) / n_samples if y.size else tol
    if y_norm_tol == 0.0:
        y_norm_tol = tol

    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        w_max = 0.0
        d_w_max = 0.0
        for j in range(n_features):
            if col_sq[j] == 0.0:
                continue
            w_j_old = w[j]
            # rho = (1/n) X_j . (r + X_j w_j)  — correlation with the
            # residual that excludes feature j's current contribution.
            rho = (X[:, j] @ r) / n_samples + col_sq[j] * w_j_old
            w_j_new = _soft_threshold(rho, alpha_l1) / (col_sq[j] + alpha_l2)
            if w_j_new != w_j_old:
                r += X[:, j] * (w_j_old - w_j_new)
                w[j] = w_j_new
            d_w_max = max(d_w_max, abs(w_j_new - w_j_old))
            w_max = max(w_max, abs(w_j_new))
        if w_max == 0.0 or d_w_max / max(w_max, 1e-300) < tol or n_iter == max_iter:
            gap = _enet_duality_gap(X, y, w, alpha_l1, alpha_l2)
            if gap < y_norm_tol:
                break
    return w, gap, n_iter


class ElasticNet(BaseEstimator, RegressorMixin):
    """Linear regression with combined L1 and L2 regularization.

    Parameters
    ----------
    alpha:
        Overall regularization strength (>= 0).
    l1_ratio:
        Mix between L1 (1.0 = lasso) and L2 (0.0 = ridge-like) penalties.
    fit_intercept:
        Fit an unpenalized intercept by centering the data.
    max_iter, tol:
        Coordinate-descent iteration cap and duality-gap tolerance
        (relative to ``||y||^2 / n``).
    warm_start:
        Reuse ``coef_`` from a previous ``fit`` as the starting point —
        used by :func:`lasso_path` to sweep alphas cheaply.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        l1_ratio: float = 0.5,
        fit_intercept: bool = True,
        max_iter: int = 1000,
        tol: float = 1e-6,
        warm_start: bool = False,
    ) -> None:
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.warm_start = warm_start

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ElasticNet":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative.")
        if not 0.0 <= self.l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1].")
        X, y = check_X_y(X, y)
        n_features = X.shape[1]

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(n_features)
            y_mean = 0.0
            Xc, yc = X, y
        Xc = np.ascontiguousarray(Xc)

        if self.warm_start and hasattr(self, "coef_") and self.coef_.shape == (
            n_features,
        ):
            w = self.coef_.copy()
        else:
            w = np.zeros(n_features)

        alpha_l1 = self.alpha * self.l1_ratio
        alpha_l2 = self.alpha * (1.0 - self.l1_ratio)
        w, gap, n_iter = _enet_coordinate_descent(
            Xc, yc, alpha_l1, alpha_l2, w, self.max_iter, self.tol
        )

        self.coef_ = w
        self.intercept_ = y_mean - float(x_mean @ w)
        self.dual_gap_ = gap
        self.n_iter_ = n_iter
        self.n_features_in_ = n_features
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X @ self.coef_ + self.intercept_


class Lasso(ElasticNet):
    """L1-regularized linear regression (elastic net with ``l1_ratio=1``)."""

    def __init__(
        self,
        alpha: float = 1.0,
        fit_intercept: bool = True,
        max_iter: int = 1000,
        tol: float = 1e-6,
        warm_start: bool = False,
    ) -> None:
        super().__init__(
            alpha=alpha,
            l1_ratio=1.0,
            fit_intercept=fit_intercept,
            max_iter=max_iter,
            tol=tol,
            warm_start=warm_start,
        )

    @classmethod
    def _get_param_names(cls) -> list[str]:
        # Exclude l1_ratio, which is fixed by the subclass constructor.
        return [n for n in super()._get_param_names() if n != "l1_ratio"]


def alpha_max(X: np.ndarray, y: np.ndarray, fit_intercept: bool = True) -> float:
    """Smallest alpha for which the lasso solution is identically zero."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if fit_intercept:
        X = X - X.mean(axis=0)
        y = y - y.mean()
    n = X.shape[0]
    if n == 0:
        raise ValueError("Empty data.")
    return float(np.max(np.abs(X.T @ y)) / n)


def lasso_path(
    X: np.ndarray,
    y: np.ndarray,
    alphas: np.ndarray | None = None,
    n_alphas: int = 50,
    eps: float = 1e-3,
    fit_intercept: bool = True,
    max_iter: int = 1000,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute lasso solutions along a geometric grid of alphas.

    Returns ``(alphas, coefs)`` with ``coefs`` of shape ``(n_alphas,
    n_features)``, sweeping from large to small alpha with warm starts.
    """
    X, y = check_X_y(X, y)
    if alphas is None:
        a_max = alpha_max(X, y, fit_intercept)
        if a_max <= 0:
            a_max = 1.0
        alphas = np.geomspace(a_max, a_max * eps, n_alphas)
    else:
        alphas = np.sort(np.asarray(alphas, dtype=np.float64))[::-1]

    model = Lasso(
        alpha=float(alphas[0]),
        fit_intercept=fit_intercept,
        max_iter=max_iter,
        tol=tol,
        warm_start=True,
    )
    coefs = np.zeros((len(alphas), X.shape[1]))
    for i, a in enumerate(alphas):
        model.alpha = float(a)
        model.fit(X, y)
        coefs[i] = model.coef_
    return alphas, coefs


class LassoCV(BaseEstimator, RegressorMixin):
    """Lasso with alpha selected by K-fold cross-validation along a path."""

    def __init__(
        self,
        n_alphas: int = 30,
        eps: float = 1e-3,
        cv: int = 5,
        fit_intercept: bool = True,
        max_iter: int = 1000,
        tol: float = 1e-6,
        random_state: int | None = 0,
    ) -> None:
        self.n_alphas = n_alphas
        self.eps = eps
        self.cv = cv
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LassoCV":
        from ..model_selection import KFold

        X, y = check_X_y(X, y, min_samples=max(2, self.cv))
        a_max = alpha_max(X, y, self.fit_intercept)
        if a_max <= 0:
            a_max = 1.0
        alphas = np.geomspace(a_max, a_max * self.eps, self.n_alphas)

        kf = KFold(n_splits=self.cv, shuffle=True, random_state=self.random_state)
        errors = np.zeros((self.n_alphas, self.cv))
        for fold, (tr, te) in enumerate(kf.split(X)):
            model = Lasso(
                alpha=float(alphas[0]),
                fit_intercept=self.fit_intercept,
                max_iter=self.max_iter,
                tol=self.tol,
                warm_start=True,
            )
            for i, a in enumerate(alphas):
                model.alpha = float(a)
                model.fit(X[tr], y[tr])
                pred = model.predict(X[te])
                errors[i, fold] = np.mean((y[te] - pred) ** 2)

        mean_err = errors.mean(axis=1)
        best = int(np.argmin(mean_err))
        self.alpha_ = float(alphas[best])
        self.alphas_ = alphas
        self.mse_path_ = errors
        inner = Lasso(
            alpha=self.alpha_,
            fit_intercept=self.fit_intercept,
            max_iter=self.max_iter,
            tol=self.tol,
        ).fit(X, y)
        self.coef_ = inner.coef_
        self.intercept_ = inner.intercept_
        self.n_features_in_ = X.shape[1]
        self._inner = inner
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        return self._inner.predict(X)
