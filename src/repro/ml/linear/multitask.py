"""Multi-task lasso via block coordinate descent.

This is the estimator the reproduced paper uses at the extrapolation
level: several related regression tasks (scaling curves of configurations
that cluster together, or large target scales) are fitted jointly with an
L2,1 penalty

    (1 / (2 n)) * ||Y - X W||_F^2  +  alpha * sum_j ||W[j, :]||_2

so that every task shares one support of active features.  A feature
(scaling basis function) is either used by *all* tasks in the group or by
none — which is exactly the mechanism that damps per-task interpolation
noise in the paper's method.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, RegressorMixin, check_is_fitted
from ..validation import check_array, check_X_y

__all__ = ["MultiTaskLasso", "MultiTaskLassoCV", "multitask_alpha_max"]


def multitask_alpha_max(
    X: np.ndarray, Y: np.ndarray, fit_intercept: bool = True
) -> float:
    """Smallest alpha for which the multitask-lasso solution is all zero.

    Equals ``max_j || X_j^T Y ||_2 / n`` on centered data.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    if Y.ndim == 1:
        Y = Y[:, None]
    if fit_intercept:
        X = X - X.mean(axis=0)
        Y = Y - Y.mean(axis=0)
    n = X.shape[0]
    corr = X.T @ Y  # (n_features, n_tasks)
    return float(np.max(np.sqrt(np.einsum("jt,jt->j", corr, corr))) / n)


def _mtl_duality_gap(
    X: np.ndarray, Y: np.ndarray, W: np.ndarray, alpha: float
) -> float:
    """Duality gap of the multitask-lasso problem at ``W``.

    The dual constraint is ``max_j ||X_j^T Theta||_2 <= alpha`` (the dual
    norm of L2,1 is L2,inf); the residual is scaled into the feasible set.
    """
    n = X.shape[0]
    R = Y - X @ W
    row_norms = np.sqrt(np.einsum("jt,jt->j", W, W))
    primal = float(np.sum(R * R)) / (2.0 * n) + alpha * float(row_norms.sum())
    corr = X.T @ R / n
    corr_norms = np.sqrt(np.einsum("jt,jt->j", corr, corr))
    max_corr = float(corr_norms.max()) if corr_norms.size else 0.0
    scale = 1.0 if max_corr <= alpha else alpha / max_corr
    Theta = (R / n) * scale
    dual = -0.5 * n * float(np.sum(Theta * Theta)) + float(np.sum(Theta * Y))
    return float(max(primal - dual, 0.0))


def _mtl_block_coordinate_descent(
    X: np.ndarray,
    Y: np.ndarray,
    alpha: float,
    W: np.ndarray,
    max_iter: int,
    tol: float,
) -> tuple[np.ndarray, float, int]:
    """Cyclic block coordinate descent over feature rows of ``W``.

    For each feature j the closed-form update is a group soft-threshold:

        z = (1/n) X_j^T (R + X_j W_j)        # (n_tasks,)
        W_j <- z / c_j * max(0, 1 - alpha / ||z||_2),   c_j = (1/n)||X_j||^2

    The residual matrix R is maintained incrementally (rank-1 updates).
    """
    n_samples, n_features = X.shape
    col_sq = np.einsum("ij,ij->j", X, X) / n_samples
    R = Y - X @ W
    gap = np.inf
    y_norm_tol = tol * float(np.sum(Y * Y)) / n_samples
    if y_norm_tol == 0.0:
        y_norm_tol = tol

    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        w_max = 0.0
        d_w_max = 0.0
        for j in range(n_features):
            c = col_sq[j]
            if c == 0.0:
                continue
            w_old = W[j].copy()
            z = (X[:, j] @ R) / n_samples + c * w_old
            z_norm = float(np.sqrt(z @ z))
            if z_norm <= alpha:
                w_new = np.zeros_like(w_old)
            else:
                w_new = z * ((1.0 - alpha / z_norm) / c)
            delta = w_old - w_new
            if np.any(delta != 0.0):
                R += np.outer(X[:, j], delta)
                W[j] = w_new
            d_w_max = max(d_w_max, float(np.max(np.abs(delta))))
            w_max = max(w_max, float(np.max(np.abs(w_new))) if w_new.size else 0.0)
        if w_max == 0.0 or d_w_max / max(w_max, 1e-300) < tol or n_iter == max_iter:
            gap = _mtl_duality_gap(X, Y, W, alpha)
            if gap < y_norm_tol:
                break
    return W, gap, n_iter


class MultiTaskLasso(BaseEstimator, RegressorMixin):
    """Jointly sparse linear models for multiple regression tasks.

    ``fit`` takes ``Y`` of shape ``(n_samples, n_tasks)``; the learned
    ``coef_`` has shape ``(n_tasks, n_features)`` and every feature column
    is either active for all tasks or zero for all tasks.

    Parameters
    ----------
    alpha:
        Strength of the L2,1 penalty.
    fit_intercept:
        Fit per-task unpenalized intercepts by centering.
    max_iter, tol:
        Block-coordinate-descent cap and duality-gap tolerance.
    warm_start:
        Reuse the previous ``coef_`` as the starting point.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        fit_intercept: bool = True,
        max_iter: int = 1000,
        tol: float = 1e-6,
        warm_start: bool = False,
    ) -> None:
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.warm_start = warm_start

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "MultiTaskLasso":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative.")
        X, Y = check_X_y(X, Y, multi_output=True)
        n_features = X.shape[1]
        n_tasks = Y.shape[1]

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = Y.mean(axis=0)
            Xc = np.ascontiguousarray(X - x_mean)
            Yc = np.ascontiguousarray(Y - y_mean)
        else:
            x_mean = np.zeros(n_features)
            y_mean = np.zeros(n_tasks)
            Xc, Yc = np.ascontiguousarray(X), np.ascontiguousarray(Y)

        if (
            self.warm_start
            and hasattr(self, "coef_")
            and self.coef_.shape == (n_tasks, n_features)
        ):
            W = self.coef_.T.copy()
        else:
            W = np.zeros((n_features, n_tasks))

        W, gap, n_iter = _mtl_block_coordinate_descent(
            Xc, Yc, self.alpha, W, self.max_iter, self.tol
        )

        self.coef_ = W.T  # (n_tasks, n_features), sklearn convention
        self.intercept_ = y_mean - x_mean @ W
        self.dual_gap_ = gap
        self.n_iter_ = n_iter
        self.n_features_in_ = n_features
        self.n_tasks_ = n_tasks
        return self

    @property
    def support_(self) -> np.ndarray:
        """Boolean mask of features active across the task group."""
        check_is_fitted(self, "coef_")
        return np.any(self.coef_ != 0.0, axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict all tasks; returns shape ``(n_samples, n_tasks)``."""
        check_is_fitted(self, "coef_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X @ self.coef_.T + self.intercept_


class MultiTaskLassoCV(BaseEstimator, RegressorMixin):
    """MultiTaskLasso with alpha chosen by K-fold CV over a geometric path."""

    def __init__(
        self,
        n_alphas: int = 30,
        eps: float = 1e-3,
        cv: int = 5,
        fit_intercept: bool = True,
        max_iter: int = 1000,
        tol: float = 1e-6,
        random_state: int | None = 0,
    ) -> None:
        self.n_alphas = n_alphas
        self.eps = eps
        self.cv = cv
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "MultiTaskLassoCV":
        from ..model_selection import KFold

        X, Y = check_X_y(X, Y, multi_output=True, min_samples=max(2, self.cv))
        a_max = multitask_alpha_max(X, Y, self.fit_intercept)
        if a_max <= 0:
            a_max = 1.0
        alphas = np.geomspace(a_max, a_max * self.eps, self.n_alphas)

        n_splits = min(self.cv, X.shape[0])
        kf = KFold(n_splits=n_splits, shuffle=True, random_state=self.random_state)
        errors = np.zeros((self.n_alphas, n_splits))
        for fold, (tr, te) in enumerate(kf.split(X)):
            model = MultiTaskLasso(
                alpha=float(alphas[0]),
                fit_intercept=self.fit_intercept,
                max_iter=self.max_iter,
                tol=self.tol,
                warm_start=True,
            )
            for i, a in enumerate(alphas):
                model.alpha = float(a)
                model.fit(X[tr], Y[tr])
                pred = model.predict(X[te])
                errors[i, fold] = np.mean((Y[te] - pred) ** 2)

        mean_err = errors.mean(axis=1)
        best = int(np.argmin(mean_err))
        self.alpha_ = float(alphas[best])
        self.alphas_ = alphas
        self.mse_path_ = errors
        inner = MultiTaskLasso(
            alpha=self.alpha_,
            fit_intercept=self.fit_intercept,
            max_iter=self.max_iter,
            tol=self.tol,
        ).fit(X, Y)
        self.coef_ = inner.coef_
        self.intercept_ = inner.intercept_
        self.n_features_in_ = X.shape[1]
        self._inner = inner
        return self

    @property
    def support_(self) -> np.ndarray:
        check_is_fitted(self, "coef_")
        return np.any(self.coef_ != 0.0, axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        return self._inner.predict(X)
