"""Linear models: OLS, ridge, lasso/elastic net, and multitask lasso."""

from .adaptive import AdaptiveLasso
from .coordinate_descent import ElasticNet, Lasso, LassoCV, alpha_max, lasso_path
from .multitask import MultiTaskLasso, MultiTaskLassoCV, multitask_alpha_max
from .ols import LinearRegression
from .ridge import Ridge, RidgeCV

__all__ = [
    "AdaptiveLasso",
    "ElasticNet",
    "Lasso",
    "LassoCV",
    "alpha_max",
    "lasso_path",
    "MultiTaskLasso",
    "MultiTaskLassoCV",
    "multitask_alpha_max",
    "LinearRegression",
    "Ridge",
    "RidgeCV",
]
