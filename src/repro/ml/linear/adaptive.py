"""Adaptive lasso (Zou 2006) — reweighted L1 with oracle properties.

A two-stage estimator: a pilot fit (ridge) yields weights
``w_j = 1 / |beta_pilot_j|^gamma``; the lasso is then solved on the
reweighted design, penalizing plausible features less.  Under classical
conditions this recovers the true support with asymptotically unbiased
coefficients — relevant here as a sharper alternative to plain lasso
support selection in the extrapolation level.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, RegressorMixin, check_is_fitted
from ..validation import check_array, check_X_y
from .coordinate_descent import Lasso
from .ridge import Ridge

__all__ = ["AdaptiveLasso"]


class AdaptiveLasso(BaseEstimator, RegressorMixin):
    """Two-stage reweighted L1 regression.

    Parameters
    ----------
    alpha:
        L1 strength applied to the reweighted problem.
    gamma:
        Weight exponent; larger values penalize small pilot coefficients
        more aggressively.
    pilot_alpha:
        Ridge strength of the pilot estimator.
    max_iter, tol:
        Passed to the inner coordinate-descent solver.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        gamma: float = 1.0,
        pilot_alpha: float = 1e-3,
        max_iter: int = 1000,
        tol: float = 1e-6,
    ) -> None:
        self.alpha = alpha
        self.gamma = gamma
        self.pilot_alpha = pilot_alpha
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaptiveLasso":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative.")
        if self.gamma <= 0:
            raise ValueError("gamma must be positive.")
        X, y = check_X_y(X, y)

        pilot = Ridge(alpha=self.pilot_alpha).fit(X, y)
        pilot_coef = np.abs(np.asarray(pilot.coef_, dtype=np.float64))
        # Features the pilot zeroes out entirely get an effectively
        # infinite penalty (implemented by a tiny rescale).
        floor = max(pilot_coef.max(), 1.0) * 1e-12
        weights = np.maximum(pilot_coef, floor) ** self.gamma

        # Solve lasso on the rescaled design X' = X * w, then map back:
        # beta_j = w_j * beta'_j.
        X_scaled = X * weights
        inner = Lasso(alpha=self.alpha, max_iter=self.max_iter, tol=self.tol)
        inner.fit(X_scaled, y)

        self.coef_ = inner.coef_ * weights
        self.intercept_ = inner.intercept_
        self.pilot_coef_ = np.asarray(pilot.coef_)
        self.weights_ = weights
        self.dual_gap_ = inner.dual_gap_
        self.n_features_in_ = X.shape[1]
        return self

    @property
    def support_(self) -> np.ndarray:
        check_is_fitted(self, "coef_")
        return self.coef_ != 0.0

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X @ self.coef_ + self.intercept_
