"""Estimator base classes for the from-scratch ML substrate.

The interface deliberately mirrors the scikit-learn estimator contract
(``fit`` / ``predict`` / ``get_params`` / ``set_params``) so that the rest
of the library — model selection, the two-level model, the baselines — can
treat every learner uniformly and so that estimators can be cloned for
cross-validation without sharing fitted state.

The environment this reproduction targets has no scikit-learn, so every
estimator in :mod:`repro.ml` is implemented on top of numpy alone.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

from ..errors import NotFittedError

__all__ = [
    "BaseEstimator",
    "RegressorMixin",
    "TransformerMixin",
    "ClusterMixin",
    "NotFittedError",
    "clone",
    "check_is_fitted",
]


class BaseEstimator:
    """Base class providing parameter introspection and cloning.

    Subclasses must follow the convention that every constructor argument
    is stored on ``self`` under the same name and that ``fit`` stores all
    learned state in attributes whose names end with an underscore
    (``coef_``, ``tree_``, ...).  That convention is what makes
    :func:`clone` and :func:`check_is_fitted` work generically.
    """

    @classmethod
    def _get_param_names(cls) -> list[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        sig = inspect.signature(init)
        names = [
            p.name
            for p in sig.parameters.values()
            if p.name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        return sorted(names)

    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """Return constructor parameters as a dict.

        Parameters
        ----------
        deep:
            If True, also expand parameters of nested estimators using the
            ``<component>__<param>`` convention.
        """
        out: dict[str, Any] = {}
        for name in self._get_param_names():
            value = getattr(self, name)
            out[name] = value
            if deep and isinstance(value, BaseEstimator):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    out[f"{name}__{sub_name}"] = sub_value
        return out

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set constructor parameters; supports ``a__b`` nested syntax."""
        if not params:
            return self
        valid = set(self._get_param_names())
        nested: dict[str, dict[str, Any]] = {}
        for key, value in params.items():
            if "__" in key:
                head, _, tail = key.partition("__")
                if head not in valid:
                    raise ValueError(
                        f"Invalid parameter {head!r} for {type(self).__name__}"
                    )
                nested.setdefault(head, {})[tail] = value
            else:
                if key not in valid:
                    raise ValueError(
                        f"Invalid parameter {key!r} for {type(self).__name__}"
                    )
                setattr(self, key, value)
        for head, sub_params in nested.items():
            sub_est = getattr(self, head)
            if not isinstance(sub_est, BaseEstimator):
                raise ValueError(f"Parameter {head!r} is not an estimator")
            sub_est.set_params(**sub_params)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params(deep=False).items())
        return f"{type(self).__name__}({params})"


class RegressorMixin:
    """Mixin adding an R^2 ``score`` method for regressors."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 of ``self.predict(X)`` on ``y``."""
        from .metrics import r2_score

        return r2_score(y, self.predict(X))  # type: ignore[attr-defined]


class TransformerMixin:
    """Mixin adding ``fit_transform`` for transformers."""

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        return self.fit(X, y).transform(X)  # type: ignore[attr-defined]


class ClusterMixin:
    """Mixin adding ``fit_predict`` for clusterers."""

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_  # type: ignore[attr-defined]


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with identical parameters.

    Parameter *values* are deep-copied so fitted sub-objects cannot leak
    between cross-validation folds.
    """
    params = estimator.get_params(deep=False)
    fresh = {
        name: clone(value) if isinstance(value, BaseEstimator) else copy.deepcopy(value)
        for name, value in params.items()
    }
    return type(estimator)(**fresh)


def check_is_fitted(estimator: Any, attributes: str | list[str] | None = None) -> None:
    """Raise :class:`NotFittedError` unless the estimator looks fitted.

    Fitted state is detected via trailing-underscore attributes, or via the
    explicit attribute names given in ``attributes``.
    """
    if attributes is not None:
        if isinstance(attributes, str):
            attributes = [attributes]
        missing = [a for a in attributes if not hasattr(estimator, a)]
        if missing:
            raise NotFittedError(
                f"{type(estimator).__name__} is not fitted; missing {missing}"
            )
        return
    fitted = [
        a
        for a in vars(estimator)
        if a.endswith("_") and not a.startswith("__") and not a.endswith("__")
    ]
    if not fitted:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first."
        )
