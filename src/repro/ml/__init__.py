"""From-scratch ML substrate (numpy-only, scikit-learn-style API).

Everything the two-level performance model and its baselines need:
linear models (including the multitask lasso at the heart of the paper's
extrapolation level), CART trees and ensembles (the interpolation-level
random forest), clustering, kernel methods, an MLP, preprocessing, and
model-selection utilities.
"""

from .base import (
    BaseEstimator,
    ClusterMixin,
    NotFittedError,
    RegressorMixin,
    TransformerMixin,
    check_is_fitted,
    clone,
)
from .cluster import AgglomerativeClustering, KMeans
from .inspection import PermutationImportance, permutation_importance
from .kernel import (
    GaussianProcessRegressor,
    KernelRidge,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
)
from .linear import (
    AdaptiveLasso,
    ElasticNet,
    Lasso,
    LassoCV,
    LinearRegression,
    MultiTaskLasso,
    MultiTaskLassoCV,
    Ridge,
    RidgeCV,
    lasso_path,
    multitask_alpha_max,
)
from .metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    r2_score,
    root_mean_squared_error,
    silhouette_score,
)
from .mlp import MLPRegressor
from .model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    cross_val_predict,
    cross_val_score,
    train_test_split,
)
from .neighbors import KNeighborsRegressor
from .preprocessing import (
    LogTransformer,
    MinMaxScaler,
    Pipeline,
    PolynomialFeatures,
    StandardScaler,
)
from .tree import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)

__all__ = [
    "BaseEstimator",
    "ClusterMixin",
    "NotFittedError",
    "RegressorMixin",
    "TransformerMixin",
    "check_is_fitted",
    "clone",
    "AgglomerativeClustering",
    "KMeans",
    "GaussianProcessRegressor",
    "KernelRidge",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "PermutationImportance",
    "permutation_importance",
    "AdaptiveLasso",
    "ElasticNet",
    "Lasso",
    "LassoCV",
    "LinearRegression",
    "MultiTaskLasso",
    "MultiTaskLassoCV",
    "Ridge",
    "RidgeCV",
    "lasso_path",
    "multitask_alpha_max",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "r2_score",
    "root_mean_squared_error",
    "silhouette_score",
    "MLPRegressor",
    "GridSearchCV",
    "KFold",
    "ParameterGrid",
    "cross_val_predict",
    "cross_val_score",
    "train_test_split",
    "KNeighborsRegressor",
    "LogTransformer",
    "MinMaxScaler",
    "Pipeline",
    "PolynomialFeatures",
    "StandardScaler",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "RandomForestRegressor",
]
