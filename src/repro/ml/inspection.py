"""Model inspection: permutation feature importance.

Model-agnostic importance: shuffle one feature column at a time and
measure the score drop.  Used to report which application parameters
drive runtime at each scale — a diagnostic HPC users ask of any
performance model — without relying on tree-specific impurity
importances (which are biased toward high-cardinality features).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .metrics import r2_score
from .validation import check_random_state, check_X_y

__all__ = ["PermutationImportance", "permutation_importance"]


@dataclass(frozen=True)
class PermutationImportance:
    """Importance result.

    Attributes
    ----------
    importances_mean, importances_std:
        Per-feature mean and std of the score drop over repeats.
    baseline_score:
        Score of the unperturbed model.
    feature_names:
        Optional column names (parallel to the arrays).
    """

    importances_mean: np.ndarray
    importances_std: np.ndarray
    baseline_score: float
    feature_names: tuple[str, ...] | None = None

    def ranking(self) -> list[tuple[str, float]]:
        """(name, mean importance) pairs, most important first."""
        names = (
            self.feature_names
            if self.feature_names is not None
            else tuple(f"x{j}" for j in range(len(self.importances_mean)))
        )
        pairs = list(zip(names, self.importances_mean.tolist()))
        pairs.sort(key=lambda kv: kv[1], reverse=True)
        return pairs


def permutation_importance(
    model: object,
    X: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    scorer: Callable[[np.ndarray, np.ndarray], float] | None = None,
    feature_names: Sequence[str] | None = None,
    random_state: object = None,
) -> PermutationImportance:
    """Compute permutation importances of a fitted regressor.

    Parameters
    ----------
    model:
        Fitted estimator with ``predict``.
    X, y:
        Evaluation data (ideally held out).
    n_repeats:
        Shuffles per feature (importance std comes from these).
    scorer:
        ``(y_true, y_pred) -> float``, greater is better; default R^2.
    feature_names:
        Optional column names for reporting.
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1.")
    X, y = check_X_y(X, y)
    if feature_names is not None and len(feature_names) != X.shape[1]:
        raise ValueError("feature_names length must match X columns.")
    rng = check_random_state(random_state)
    score = scorer if scorer is not None else r2_score

    baseline = float(score(y, model.predict(X)))
    n_features = X.shape[1]
    drops = np.empty((n_features, n_repeats))
    X_work = X.copy()
    for j in range(n_features):
        original = X_work[:, j].copy()
        for r in range(n_repeats):
            X_work[:, j] = original[rng.permutation(len(original))]
            permuted = float(score(y, model.predict(X_work)))
            drops[j, r] = baseline - permuted
        X_work[:, j] = original
    return PermutationImportance(
        importances_mean=drops.mean(axis=1),
        importances_std=drops.std(axis=1),
        baseline_score=baseline,
        feature_names=tuple(feature_names) if feature_names else None,
    )
