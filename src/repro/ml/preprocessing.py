"""Feature preprocessing: scalers, log transforms, polynomial features,
and a minimal Pipeline.

Runtimes span orders of magnitude across the parameter space, so the
log-transform and standardization utilities here are used throughout the
two-level model and the baselines.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

import numpy as np

from .base import BaseEstimator, TransformerMixin, check_is_fitted
from .validation import check_array

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "LogTransformer",
    "PolynomialFeatures",
    "Pipeline",
]


def _handle_zeros_in_scale(
    scale: np.ndarray, reference: np.ndarray | None = None
) -> np.ndarray:
    """Replace (near-)zero per-feature scales with 1.0, in place.

    An exact-zero guard is not enough: a subnormal span such as
    ``2.2e-311`` passes ``scale == 0.0`` untouched but overflows to inf
    when its reciprocal is taken, so transform/inverse_transform emit
    non-finite values.  Like sklearn's ``_handle_zeros_in_scale``, treat
    any scale within ~10 machine epsilons of the feature's magnitude
    (``reference``, e.g. ``max(|min|, |max|)``) as a constant feature.
    """
    eps = 10.0 * np.finfo(scale.dtype).eps
    ref = np.maximum(np.abs(reference), 1.0) if reference is not None else 1.0
    constant = scale <= eps * ref
    # Even above the relative threshold, a span whose reciprocal is not
    # finite (overflowed span, or subnormal span -> inf) cannot scale.
    with np.errstate(divide="ignore", over="ignore"):
        constant |= ~np.isfinite(scale) | ~np.isfinite(1.0 / scale)
    scale[constant] = 1.0
    return scale


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardize features to zero mean and unit variance.

    Constant features get a unit scale so they pass through unchanged
    instead of producing division by zero.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X: np.ndarray, y: object = None) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            self.scale_ = _handle_zeros_in_scale(std, np.abs(X).max(axis=0))
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X, min_samples=0)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale features to the ``feature_range`` interval (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        self.feature_range = feature_range

    def fit(self, X: np.ndarray, y: object = None) -> "MinMaxScaler":
        lo, hi = self.feature_range
        if lo >= hi:
            raise ValueError("feature_range must be increasing.")
        X = check_array(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = _handle_zeros_in_scale(
            self.data_max_ - self.data_min_,
            np.maximum(np.abs(self.data_min_), np.abs(self.data_max_)),
        )
        self.scale_ = (hi - lo) / span
        self.min_ = lo - self.data_min_ * self.scale_
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X * self.scale_ + self.min_

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X, min_samples=0)
        return (X - self.min_) / self.scale_


class LogTransformer(BaseEstimator, TransformerMixin):
    """Elementwise ``log(X + shift)`` with exact inverse.

    Runtime data is strictly positive and multiplicative-noise-dominated,
    so models that fit in log space see homoscedastic residuals.
    """

    def __init__(self, shift: float = 0.0, base: float = np.e) -> None:
        self.shift = shift
        self.base = base

    def fit(self, X: np.ndarray, y: object = None) -> "LogTransformer":
        X = check_array(X, ensure_2d=False)
        if np.any(X + self.shift <= 0):
            raise ValueError("LogTransformer requires X + shift > 0.")
        self.log_base_ = np.log(self.base)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "log_base_")
        X = check_array(X, ensure_2d=False)
        if np.any(X + self.shift <= 0):
            raise ValueError("LogTransformer requires X + shift > 0.")
        return np.log(X + self.shift) / self.log_base_

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "log_base_")
        X = np.asarray(X, dtype=np.float64)
        return np.exp(X * self.log_base_) - self.shift


class PolynomialFeatures(BaseEstimator, TransformerMixin):
    """Generate polynomial and interaction features up to ``degree``.

    Output column order: bias (optional), then degree-1 terms, then
    degree-2 combinations in lexicographic order, etc.
    """

    def __init__(
        self,
        degree: int = 2,
        include_bias: bool = True,
        interaction_only: bool = False,
    ) -> None:
        self.degree = degree
        self.include_bias = include_bias
        self.interaction_only = interaction_only

    def fit(self, X: np.ndarray, y: object = None) -> "PolynomialFeatures":
        if self.degree < 1:
            raise ValueError("degree must be >= 1.")
        X = check_array(X)
        n_features = X.shape[1]
        combos: list[tuple[int, ...]] = []
        for d in range(1, self.degree + 1):
            if self.interaction_only:
                from itertools import combinations

                combos.extend(combinations(range(n_features), d))
            else:
                combos.extend(combinations_with_replacement(range(n_features), d))
        self.combinations_ = combos
        self.n_features_in_ = n_features
        self.n_output_features_ = len(combos) + (1 if self.include_bias else 0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "combinations_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        n = X.shape[0]
        cols = []
        if self.include_bias:
            cols.append(np.ones((n, 1)))
        for combo in self.combinations_:
            col = np.ones(n)
            for idx in combo:
                col = col * X[:, idx]
            cols.append(col[:, None])
        return np.hstack(cols)


class Pipeline(BaseEstimator):
    """Chain of transformers ending in an estimator.

    Each step is a ``(name, estimator)`` pair; all but the last must
    implement ``transform``.
    """

    def __init__(self, steps: list[tuple[str, BaseEstimator]]) -> None:
        if not steps:
            raise ValueError("Pipeline needs at least one step.")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValueError("Pipeline step names must be unique.")
        self.steps = steps

    @property
    def named_steps(self) -> dict[str, BaseEstimator]:
        return dict(self.steps)

    def _transform_through(self, X: np.ndarray) -> np.ndarray:
        for _, step in self.steps[:-1]:
            X = step.transform(X)
        return X

    def fit(self, X: np.ndarray, y: object = None) -> "Pipeline":
        for _, step in self.steps[:-1]:
            X = step.fit_transform(X, y)
        self.steps[-1][1].fit(X, y)
        self.fitted_ = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "fitted_")
        return self.steps[-1][1].predict(self._transform_through(X))

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "fitted_")
        X = self._transform_through(X)
        return self.steps[-1][1].transform(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        check_is_fitted(self, "fitted_")
        return self.steps[-1][1].score(self._transform_through(X), y)
