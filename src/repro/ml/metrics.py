"""Regression and clustering metrics.

The headline metric of the reproduced paper is the mean absolute
percentage error (MAPE) of large-scale runtime predictions; the other
metrics are used for model selection and for the per-scale error tables
produced by the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataValidationError
from .validation import check_consistent_length

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_percentage_error",
    "median_absolute_percentage_error",
    "symmetric_mean_absolute_percentage_error",
    "max_error",
    "r2_score",
    "explained_variance_score",
    "pairwise_distances",
    "silhouette_score",
]


def _validate(y_true: object, y_pred: object) -> tuple[np.ndarray, np.ndarray]:
    yt = np.asarray(y_true, dtype=np.float64)
    yp = np.asarray(y_pred, dtype=np.float64)
    check_consistent_length(yt, yp)
    if yt.shape != yp.shape:
        raise DataValidationError(f"Shape mismatch: {yt.shape} vs {yp.shape}")
    if yt.size == 0:
        raise DataValidationError("Empty input to metric.")
    return yt, yp


def mean_absolute_error(y_true: object, y_pred: object) -> float:
    """Mean of |y_true - y_pred|."""
    yt, yp = _validate(y_true, y_pred)
    return float(np.mean(np.abs(yt - yp)))


def mean_squared_error(y_true: object, y_pred: object) -> float:
    """Mean of (y_true - y_pred)^2."""
    yt, yp = _validate(y_true, y_pred)
    return float(np.mean((yt - yp) ** 2))


def root_mean_squared_error(y_true: object, y_pred: object) -> float:
    """Square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_percentage_error(y_true: object, y_pred: object) -> float:
    """MAPE as a fraction (0.10 == 10 %) — the paper's headline metric.

    Zero true values are rejected rather than clipped: runtimes are
    strictly positive, so a zero indicates an upstream bug.
    """
    yt, yp = _validate(y_true, y_pred)
    if np.any(yt == 0):
        raise ValueError("MAPE undefined for zero true values.")
    return float(np.mean(np.abs((yt - yp) / yt)))


def median_absolute_percentage_error(y_true: object, y_pred: object) -> float:
    """Median of |relative error| — robust variant of MAPE."""
    yt, yp = _validate(y_true, y_pred)
    if np.any(yt == 0):
        raise ValueError("Percentage error undefined for zero true values.")
    return float(np.median(np.abs((yt - yp) / yt)))


def symmetric_mean_absolute_percentage_error(y_true: object, y_pred: object) -> float:
    """sMAPE: mean of 2|e| / (|y| + |ŷ|); bounded in [0, 2]."""
    yt, yp = _validate(y_true, y_pred)
    denom = np.abs(yt) + np.abs(yp)
    if np.any(denom == 0):
        raise ValueError("sMAPE undefined when both true and predicted are 0.")
    return float(np.mean(2.0 * np.abs(yt - yp) / denom))


def max_error(y_true: object, y_pred: object) -> float:
    """Worst-case absolute error."""
    yt, yp = _validate(y_true, y_pred)
    return float(np.max(np.abs(yt - yp)))


def r2_score(y_true: object, y_pred: object) -> float:
    """Coefficient of determination.

    Returns 1.0 for a perfect constant fit of a constant target and 0.0
    for an imperfect one (matching scikit-learn's convention).
    """
    yt, yp = _validate(y_true, y_pred)
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - np.mean(yt)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def explained_variance_score(y_true: object, y_pred: object) -> float:
    """1 - Var(y - ŷ)/Var(y); insensitive to a constant prediction bias."""
    yt, yp = _validate(y_true, y_pred)
    var_y = float(np.var(yt))
    if var_y == 0.0:
        return 1.0 if np.allclose(yt, yp) else 0.0
    return 1.0 - float(np.var(yt - yp)) / var_y


def pairwise_distances(A: np.ndarray, B: np.ndarray | None = None) -> np.ndarray:
    """Euclidean distance matrix between rows of ``A`` and rows of ``B``.

    Uses the expanded ||a||^2 - 2 a.b + ||b||^2 form (one matmul instead of
    a broadcasted difference tensor), with clipping to guard the tiny
    negative values the expansion can produce.
    """
    A = np.asarray(A, dtype=np.float64)
    B = A if B is None else np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("pairwise_distances expects 2-D inputs.")
    sq = (
        np.sum(A * A, axis=1)[:, None]
        - 2.0 * (A @ B.T)
        + np.sum(B * B, axis=1)[None, :]
    )
    np.clip(sq, 0.0, None, out=sq)
    return np.sqrt(sq)


def silhouette_score(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all samples.

    Requires at least 2 clusters and at least one cluster with >1 member.
    Used by the extrapolation level to sanity-check cluster counts.
    """
    X = np.asarray(X, dtype=np.float64)
    labels = np.asarray(labels)
    uniq = np.unique(labels)
    if uniq.size < 2:
        raise ValueError("silhouette_score needs at least 2 clusters.")
    D = pairwise_distances(X)
    n = X.shape[0]
    sil = np.zeros(n)
    for i in range(n):
        own = labels == labels[i]
        n_own = int(own.sum())
        if n_own <= 1:
            sil[i] = 0.0
            continue
        a = D[i, own].sum() / (n_own - 1)
        b = np.inf
        for lab in uniq:
            if lab == labels[i]:
                continue
            mask = labels == lab
            b = min(b, float(D[i, mask].mean()))
        denom = max(a, b)
        sil[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(np.mean(sil))
