"""Multi-layer perceptron regressor trained with Adam.

The neural-network baseline of the evaluation.  Fully vectorized
forward/backward passes over mini-batches; supports early stopping on a
held-out fraction of the training data.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, RegressorMixin, check_is_fitted
from .validation import check_array, check_X_y, check_random_state

__all__ = ["MLPRegressor"]


def _activation(name: str):
    if name == "relu":
        return (lambda z: np.maximum(z, 0.0)), (lambda z, a: (z > 0).astype(z.dtype))
    if name == "tanh":
        return np.tanh, (lambda z, a: 1.0 - a * a)
    raise ValueError(f"Unknown activation {name!r}")


class MLPRegressor(BaseEstimator, RegressorMixin):
    """Feed-forward network with squared-error loss.

    Parameters
    ----------
    hidden_layer_sizes:
        Units per hidden layer, e.g. ``(64, 64)``.
    activation:
        "relu" or "tanh".
    learning_rate, max_iter, batch_size:
        Adam step size, number of epochs, and mini-batch size.
    alpha:
        L2 weight decay.
    early_stopping / validation_fraction / n_iter_no_change:
        Stop when validation loss has not improved for
        ``n_iter_no_change`` epochs; the best weights are restored.
    standardize:
        Internally standardize inputs and target (recommended; networks
        are not scale invariant).  Predictions are returned in the
        original target units.
    """

    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (64, 64),
        activation: str = "relu",
        learning_rate: float = 1e-3,
        max_iter: int = 300,
        batch_size: int = 32,
        alpha: float = 1e-4,
        early_stopping: bool = False,
        validation_fraction: float = 0.1,
        n_iter_no_change: int = 20,
        standardize: bool = True,
        random_state: object = None,
    ) -> None:
        self.hidden_layer_sizes = hidden_layer_sizes
        self.activation = activation
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.alpha = alpha
        self.early_stopping = early_stopping
        self.validation_fraction = validation_fraction
        self.n_iter_no_change = n_iter_no_change
        self.standardize = standardize
        self.random_state = random_state

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        act, _ = _activation(self.activation)
        zs, acts = [], [X]
        a = X
        for i, (W, b) in enumerate(zip(self.coefs_, self.intercepts_)):
            z = a @ W + b
            zs.append(z)
            a = z if i == len(self.coefs_) - 1 else act(z)
            acts.append(a)
        return zs, acts

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1.")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive.")
        if any(h < 1 for h in self.hidden_layer_sizes):
            raise ValueError("hidden layer sizes must be >= 1.")
        X, y = check_X_y(X, y, min_samples=2)
        rng = check_random_state(self.random_state)
        act, act_grad = _activation(self.activation)

        if self.standardize:
            self.x_mean_ = X.mean(axis=0)
            x_std = X.std(axis=0)
            x_std[x_std == 0] = 1.0
            self.x_std_ = x_std
            self.y_mean_ = float(y.mean())
            y_std = float(y.std())
            self.y_std_ = y_std if y_std > 0 else 1.0
            Xs = (X - self.x_mean_) / self.x_std_
            ys = (y - self.y_mean_) / self.y_std_
        else:
            self.x_mean_ = np.zeros(X.shape[1])
            self.x_std_ = np.ones(X.shape[1])
            self.y_mean_, self.y_std_ = 0.0, 1.0
            Xs, ys = X, y

        if self.early_stopping:
            n_val = max(1, int(round(self.validation_fraction * len(ys))))
            perm = rng.permutation(len(ys))
            val_idx, tr_idx = perm[:n_val], perm[n_val:]
            if len(tr_idx) == 0:
                raise ValueError("validation_fraction leaves no training data.")
            X_val, y_val = Xs[val_idx], ys[val_idx]
            Xs, ys = Xs[tr_idx], ys[tr_idx]

        sizes = [X.shape[1], *self.hidden_layer_sizes, 1]
        self.coefs_ = []
        self.intercepts_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialization for relu, Glorot for tanh.
            scale = (
                np.sqrt(2.0 / fan_in)
                if self.activation == "relu"
                else np.sqrt(1.0 / fan_in)
            )
            self.coefs_.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.intercepts_.append(np.zeros(fan_out))

        m_w = [np.zeros_like(W) for W in self.coefs_]
        v_w = [np.zeros_like(W) for W in self.coefs_]
        m_b = [np.zeros_like(b) for b in self.intercepts_]
        v_b = [np.zeros_like(b) for b in self.intercepts_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = len(ys)
        batch = min(self.batch_size, n)
        best_val = np.inf
        best_weights = None
        stall = 0
        self.loss_curve_: list[float] = []

        for _epoch in range(self.max_iter):
            perm = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                rows = perm[start : start + batch]
                xb, yb = Xs[rows], ys[rows]
                zs, acts = self._forward(xb)
                pred = acts[-1][:, 0]
                err = pred - yb
                epoch_loss += float(err @ err)

                delta = (err / len(rows))[:, None]
                grads_W, grads_b = [], []
                for layer in range(len(self.coefs_) - 1, -1, -1):
                    gW = acts[layer].T @ delta + self.alpha * self.coefs_[layer]
                    gb = delta.sum(axis=0)
                    grads_W.append(gW)
                    grads_b.append(gb)
                    if layer > 0:
                        delta = (delta @ self.coefs_[layer].T) * act_grad(
                            zs[layer - 1], acts[layer]
                        )
                grads_W.reverse()
                grads_b.reverse()

                step += 1
                lr_t = (
                    self.learning_rate
                    * np.sqrt(1.0 - beta2**step)
                    / (1.0 - beta1**step)
                )
                for i in range(len(self.coefs_)):
                    m_w[i] = beta1 * m_w[i] + (1 - beta1) * grads_W[i]
                    v_w[i] = beta2 * v_w[i] + (1 - beta2) * grads_W[i] ** 2
                    self.coefs_[i] -= lr_t * m_w[i] / (np.sqrt(v_w[i]) + eps)
                    m_b[i] = beta1 * m_b[i] + (1 - beta1) * grads_b[i]
                    v_b[i] = beta2 * v_b[i] + (1 - beta2) * grads_b[i] ** 2
                    self.intercepts_[i] -= lr_t * m_b[i] / (np.sqrt(v_b[i]) + eps)

            self.loss_curve_.append(epoch_loss / n)

            if self.early_stopping:
                _, val_acts = self._forward(X_val)
                val_loss = float(np.mean((val_acts[-1][:, 0] - y_val) ** 2))
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    best_weights = (
                        [W.copy() for W in self.coefs_],
                        [b.copy() for b in self.intercepts_],
                    )
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.n_iter_no_change:
                        break

        if self.early_stopping and best_weights is not None:
            self.coefs_, self.intercepts_ = best_weights
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coefs_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        Xs = (X - self.x_mean_) / self.x_std_
        _, acts = self._forward(Xs)
        return acts[-1][:, 0] * self.y_std_ + self.y_mean_
