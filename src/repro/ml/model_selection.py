"""Cross-validation splitters, scoring helpers, and grid search.

These utilities drive hyper-parameter selection inside the interpolation
level (per-scale forests) and the benchmark harness's baseline tuning.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterator, Sequence

import numpy as np

from .base import BaseEstimator, check_is_fitted, clone
from .metrics import (
    mean_absolute_percentage_error,
    mean_squared_error,
    r2_score,
)
from .validation import check_random_state

__all__ = [
    "KFold",
    "train_test_split",
    "cross_val_score",
    "cross_val_predict",
    "ParameterGrid",
    "GridSearchCV",
    "get_scorer",
]

# Scorers follow the "greater is better" convention; error metrics are
# negated, mirroring the familiar "neg_*" naming.
_SCORERS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "r2": r2_score,
    "neg_mean_squared_error": lambda yt, yp: -mean_squared_error(yt, yp),
    "neg_mape": lambda yt, yp: -mean_absolute_percentage_error(yt, yp),
}


def get_scorer(scoring: str | Callable) -> Callable[[np.ndarray, np.ndarray], float]:
    """Resolve a scoring name or pass a callable through."""
    if callable(scoring):
        return scoring
    try:
        return _SCORERS[scoring]
    except KeyError:
        raise ValueError(
            f"Unknown scoring {scoring!r}; choose from {sorted(_SCORERS)}"
        ) from None


class KFold:
    """K-fold splitter with optional shuffling.

    Fold sizes differ by at most one sample; every sample appears in
    exactly one test fold (a property test target).
    """

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = False,
        random_state: object = None,
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2.")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X: Sequence) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValueError(f"Cannot split {n} samples into {self.n_splits} folds.")
        indices = np.arange(n)
        if self.shuffle:
            rng = check_random_state(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=np.int64)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


def train_test_split(
    *arrays: np.ndarray,
    test_size: float = 0.25,
    random_state: object = None,
    shuffle: bool = True,
) -> list[np.ndarray]:
    """Split any number of same-length arrays into train/test pairs.

    Returns ``[a_train, a_test, b_train, b_test, ...]``.
    """
    if not arrays:
        raise ValueError("At least one array required.")
    n = len(arrays[0])
    for a in arrays:
        if len(a) != n:
            raise ValueError("All arrays must share their first dimension.")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1).")
    n_test = max(1, int(round(test_size * n)))
    if n_test >= n:
        raise ValueError("test_size leaves no training samples.")
    indices = np.arange(n)
    if shuffle:
        rng = check_random_state(random_state)
        rng.shuffle(indices)
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    out: list[np.ndarray] = []
    for a in arrays:
        a = np.asarray(a)
        out.extend([a[train_idx], a[test_idx]])
    return out


def cross_val_score(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    cv: int | KFold = 5,
    scoring: str | Callable = "r2",
) -> np.ndarray:
    """Score a fresh clone of ``estimator`` on each CV fold."""
    scorer = get_scorer(scoring)
    splitter = KFold(n_splits=cv) if isinstance(cv, int) else cv
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train, test in splitter.split(X):
        model = clone(estimator)
        model.fit(X[train], y[train])
        scores.append(scorer(y[test], model.predict(X[test])))
    return np.asarray(scores)


def cross_val_predict(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    cv: int | KFold = 5,
) -> np.ndarray:
    """Out-of-fold predictions for every sample."""
    splitter = KFold(n_splits=cv) if isinstance(cv, int) else cv
    X = np.asarray(X)
    y = np.asarray(y)
    out = np.empty(len(y))
    seen = np.zeros(len(y), dtype=bool)
    for train, test in splitter.split(X):
        model = clone(estimator)
        model.fit(X[train], y[train])
        out[test] = model.predict(X[test])
        seen[test] = True
    if not np.all(seen):
        raise RuntimeError("CV splitter did not cover every sample.")
    return out


class ParameterGrid:
    """Cartesian product over a dict of parameter value lists."""

    def __init__(self, grid: dict[str, Sequence]) -> None:
        if not grid:
            raise ValueError("Empty parameter grid.")
        for key, values in grid.items():
            if len(values) == 0:
                raise ValueError(f"Parameter {key!r} has no candidate values.")
        self.grid = grid

    def __iter__(self) -> Iterator[dict[str, object]]:
        keys = sorted(self.grid)
        for combo in product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def __len__(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n


class GridSearchCV(BaseEstimator):
    """Exhaustive CV search over a parameter grid, then refit on all data.

    Attributes
    ----------
    best_params_, best_score_, best_estimator_, cv_results_
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: dict[str, Sequence],
        cv: int = 5,
        scoring: str | Callable = "r2",
    ) -> None:
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        results: list[dict[str, object]] = []
        best_score = -np.inf
        best_params: dict[str, object] | None = None
        for params in ParameterGrid(self.param_grid):
            model = clone(self.estimator).set_params(**params)
            scores = cross_val_score(model, X, y, cv=self.cv, scoring=self.scoring)
            mean = float(scores.mean())
            results.append(
                {"params": params, "mean_score": mean, "std_score": float(scores.std())}
            )
            if mean > best_score:
                best_score, best_params = mean, params
        assert best_params is not None
        self.cv_results_ = results
        self.best_params_ = best_params
        self.best_score_ = best_score
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "best_estimator_")
        return self.best_estimator_.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        check_is_fitted(self, "best_estimator_")
        scorer = get_scorer(self.scoring)
        return scorer(np.asarray(y), self.predict(X))
