"""Kernel methods: kernel functions, kernel ridge regression, and a
Gaussian-process regressor.

Kernel ridge with an RBF kernel serves as the SVR-class baseline in the
evaluation (epsilon-insensitive SVR and RBF kernel ridge behave nearly
identically for smooth regression targets, and kernel ridge has a closed
form — the substitution is recorded in DESIGN.md).  The GP regressor
additionally provides predictive variances used in the uncertainty
extension experiments.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from .base import BaseEstimator, RegressorMixin, check_is_fitted
from .metrics import pairwise_distances
from .validation import check_array, check_X_y

__all__ = [
    "rbf_kernel",
    "linear_kernel",
    "polynomial_kernel",
    "KernelRidge",
    "GaussianProcessRegressor",
]


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma * ||a - b||^2)``."""
    if gamma <= 0:
        raise ValueError("gamma must be positive.")
    D = pairwise_distances(A, B)
    return np.exp(-gamma * D**2)


def linear_kernel(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Dot-product kernel ``a . b``."""
    return np.asarray(A, dtype=np.float64) @ np.asarray(B, dtype=np.float64).T


def polynomial_kernel(
    A: np.ndarray, B: np.ndarray, degree: int = 3, coef0: float = 1.0
) -> np.ndarray:
    """Polynomial kernel ``(a . b + coef0)^degree``."""
    if degree < 1:
        raise ValueError("degree must be >= 1.")
    return (linear_kernel(A, B) + coef0) ** degree


def _resolve_kernel(kernel: object, gamma: float, degree: int, coef0: float):
    if callable(kernel):
        return kernel
    if kernel == "rbf":
        return lambda A, B: rbf_kernel(A, B, gamma=gamma)
    if kernel == "linear":
        return linear_kernel
    if kernel == "poly":
        return lambda A, B: polynomial_kernel(A, B, degree=degree, coef0=coef0)
    raise ValueError(f"Unknown kernel {kernel!r}")


class KernelRidge(BaseEstimator, RegressorMixin):
    """Ridge regression in a reproducing-kernel Hilbert space.

    Solves ``(K + alpha I) c = y`` and predicts ``k(x, X_train) @ c``.

    Parameters
    ----------
    alpha:
        Regularization strength (> 0 recommended for stability).
    kernel:
        "rbf" (default), "linear", "poly", or a callable ``(A, B) -> K``.
    gamma:
        RBF width; "scale" mirrors the sklearn SVR heuristic
        ``1 / (n_features * Var(X))``.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        kernel: object = "rbf",
        gamma: object = "scale",
        degree: int = 3,
        coef0: float = 1.0,
    ) -> None:
        self.alpha = alpha
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0

    def _gamma_value(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = float(X.var())
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        g = float(self.gamma)  # type: ignore[arg-type]
        if g <= 0:
            raise ValueError("gamma must be positive.")
        return g

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelRidge":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative.")
        X, y = check_X_y(X, y)
        gamma = self._gamma_value(X)
        kfun = _resolve_kernel(self.kernel, gamma, self.degree, self.coef0)
        K = kfun(X, X)
        n = X.shape[0]
        A = K + self.alpha * np.eye(n)
        try:
            c, low = cho_factor(A)
            self.dual_coef_ = cho_solve((c, low), y)
        except np.linalg.LinAlgError:
            self.dual_coef_ = np.linalg.lstsq(A, y, rcond=None)[0]
        self.X_fit_ = X
        self.gamma_ = gamma
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "dual_coef_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        # The kernel is re-resolved from the stored hyperparameters (not
        # cached as a closure) so fitted models stay picklable.
        kfun = _resolve_kernel(self.kernel, self.gamma_, self.degree, self.coef0)
        return kfun(X, self.X_fit_) @ self.dual_coef_


class GaussianProcessRegressor(BaseEstimator, RegressorMixin):
    """GP regression with an RBF kernel and scalar noise.

    The length scale is selected by maximizing the log marginal
    likelihood over a geometric grid (robust and dependency-free, unlike
    gradient-based optimization of the kernel hyperparameters).  The
    target is centered internally; predictions add the mean back.

    Parameters
    ----------
    length_scales:
        Candidate RBF length scales; the marginal likelihood picks one.
    noise:
        Observation noise variance added to the kernel diagonal.
    """

    def __init__(
        self,
        length_scales: tuple[float, ...] = (0.1, 0.3, 1.0, 3.0, 10.0),
        noise: float = 1e-6,
    ) -> None:
        self.length_scales = length_scales
        self.noise = noise

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        if self.noise < 0:
            raise ValueError("noise must be non-negative.")
        if len(self.length_scales) == 0:
            raise ValueError("length_scales must be non-empty.")
        X, y = check_X_y(X, y)
        n = X.shape[0]
        self.y_mean_ = float(y.mean())
        yc = y - self.y_mean_
        D2 = pairwise_distances(X, X) ** 2

        best = (-np.inf, None, None, None)
        jitter = self.noise + 1e-10
        for ls in self.length_scales:
            if ls <= 0:
                raise ValueError("length scales must be positive.")
            K = np.exp(-0.5 * D2 / ls**2) + jitter * np.eye(n)
            try:
                c, low = cho_factor(K)
            except np.linalg.LinAlgError:
                continue
            alpha = cho_solve((c, low), yc)
            log_det = 2.0 * np.sum(np.log(np.diag(c)))
            lml = (
                -0.5 * float(yc @ alpha)
                - 0.5 * log_det
                - 0.5 * n * np.log(2.0 * np.pi)
            )
            if lml > best[0]:
                best = (lml, ls, (c, low), alpha)

        if best[1] is None:
            raise np.linalg.LinAlgError(
                "GP kernel matrix not positive definite for any length scale."
            )
        self.log_marginal_likelihood_, self.length_scale_, cho, self.alpha_ = best
        self._cho = cho
        self.X_fit_ = X
        self.n_features_in_ = X.shape[1]
        return self

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        check_is_fitted(self, "alpha_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        D2 = pairwise_distances(X, self.X_fit_) ** 2
        K_star = np.exp(-0.5 * D2 / self.length_scale_**2)
        mean = K_star @ self.alpha_ + self.y_mean_
        if not return_std:
            return mean
        v = cho_solve(self._cho, K_star.T)
        var = 1.0 - np.einsum("ij,ji->i", K_star, v)
        np.clip(var, 0.0, None, out=var)
        return mean, np.sqrt(var)
