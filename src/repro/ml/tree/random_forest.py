"""Random forest regressor — the paper's interpolation-level learner.

Bagged CART trees with per-node feature subsampling and optional
out-of-bag error estimation.  The OOB estimate is what the two-level
model's diagnostics report as interpolation quality without spending a
separate validation split.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ..base import BaseEstimator, RegressorMixin, check_is_fitted
from ..validation import check_array, check_X_y, check_random_state, spawn_rngs
from .decision_tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(BaseEstimator, RegressorMixin):
    """Ensemble of bootstrap-trained regression trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, min_impurity_decrease:
        Passed through to each :class:`DecisionTreeRegressor`.
    max_features:
        Per-split feature subset; default 1.0 (all features), the
        scikit-learn default for regression forests.
    bootstrap:
        Draw a bootstrap sample per tree (True) or train every tree on the
        full data (False; then only feature subsampling decorrelates).
    oob_score:
        Compute the out-of-bag R^2 and per-sample OOB predictions.
    random_state:
        Seed or Generator; trees get independent child streams.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: object = 1.0,
        min_impurity_decrease: float = 0.0,
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state: object = None,
    ) -> None:
        if int(n_estimators) < 1:
            raise ConfigurationError("n_estimators must be >= 1.")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        if self.n_estimators < 1:
            # Re-check at fit time: set_params/attribute writes can change
            # n_estimators after construction, and predict divides by it.
            raise ConfigurationError("n_estimators must be >= 1.")
        if self.oob_score and not self.bootstrap:
            raise ValueError("oob_score requires bootstrap=True.")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        tree_rngs = spawn_rngs(rng, self.n_estimators)

        self.estimators_: list[DecisionTreeRegressor] = []
        oob_sum = np.zeros(n_samples)
        oob_count = np.zeros(n_samples, dtype=np.int64)

        for t_rng in tree_rngs:
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                min_impurity_decrease=self.min_impurity_decrease,
                random_state=t_rng,
            )
            if self.bootstrap:
                idx = t_rng.integers(0, n_samples, size=n_samples)
                tree.fit(X, y, sample_indices=idx)
                if self.oob_score:
                    mask = np.ones(n_samples, dtype=bool)
                    mask[np.unique(idx)] = False
                    if np.any(mask):
                        oob_sum[mask] += tree.predict(X[mask])
                        oob_count[mask] += 1
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)

        importances = np.mean(
            [t.feature_importances_ for t in self.estimators_], axis=0
        )
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        self.n_features_in_ = X.shape[1]

        if self.oob_score:
            covered = oob_count > 0
            self.oob_prediction_ = np.full(n_samples, np.nan)
            self.oob_prediction_[covered] = oob_sum[covered] / oob_count[covered]
            if covered.sum() >= 2:
                from ..metrics import r2_score

                self.oob_score_ = r2_score(y[covered], self.oob_prediction_[covered])
            else:
                self.oob_score_ = np.nan
        return self

    def _validate_predict_X(self, X: np.ndarray) -> np.ndarray:
        """Validate a predict-time matrix once (n=0 rows are allowed)."""
        check_is_fitted(self, "estimators_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over all trees."""
        X = self._validate_predict_X(X)
        out = np.zeros(X.shape[0])
        for tree in self.estimators_:
            out += tree.tree_.predict(X)
        out /= len(self.estimators_)
        return out

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_estimators, n_samples)``.

        Used to obtain ensemble spread (an uncertainty proxy the
        two-level model's diagnostics expose for interpolation outputs).
        Validates once, then traverses the already-checked matrix.
        """
        X = self._validate_predict_X(X)
        return np.stack([t.tree_.predict(X) for t in self.estimators_])

    def prediction_std(self, X: np.ndarray) -> np.ndarray:
        """Standard deviation of per-tree predictions for each sample."""
        return self.predict_all(X).std(axis=0)
