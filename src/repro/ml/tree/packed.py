"""Packed (arena) representation of fitted forests for wire-speed inference.

A fitted :class:`~repro.ml.tree.random_forest.RandomForestRegressor` is a
Python list of tree objects; predicting walks them one by one, so a cache
miss in the serving layer costs milliseconds of interpreter overhead even
though the arithmetic is trivial.  :class:`PackedForest` flattens every
tree's node arrays (``feature/threshold/left/right/value``) into one
contiguous arena with per-tree root offsets and advances **all (tree,
sample) pairs at once** with a handful of vectorized gathers per tree
level.

Bit-identity contract
---------------------
``PackedForest.predict`` returns *exactly* the floats the object path
returns.  Two properties make that hold:

* internal nodes keep their original ``feature``/``threshold`` values, so
  every sample lands in the same leaf as in the per-tree walk;
* per-tree leaf values are reduced over axis 0 of a C-contiguous
  ``(n_trees, n_samples)`` matrix, which numpy reduces sequentially tree
  by tree — the same accumulation order as the object path's
  ``out += tree.predict(X)`` loop.

The traversal itself uses two derived tricks that do not change any
comparison: leaves become self-loops (``left == right == self``) with a
``+inf`` threshold so finished pairs idle harmlessly, and the left/right
arrays are interleaved into one ``children`` array indexed by
``2 * node + go_left`` (one gather instead of two gathers plus a select).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ...errors import ConfigurationError, DataValidationError
from .decision_tree import _LEAF, TreeArrays

__all__ = ["PackedForest", "ordered_sum_axis0"]

#: Below this many (tree, sample) pairs the fixed-depth loop (no masking,
#: fewest numpy calls per level) wins; above it, active-set filtering
#: saves real element work because most pairs reach shallow leaves.
_ACTIVE_SET_THRESHOLD = 32768

_CANONICAL = ("feature", "threshold", "left", "right", "value", "tree_offsets")


def ordered_sum_axis0(V: np.ndarray) -> np.ndarray:
    """Axis-0 sum of a C-contiguous 2-D array with guaranteed
    first-to-last accumulation order.

    For ``shape[1] >= 2`` numpy's axis-0 reduction already walks rows
    sequentially (pairwise summation only applies along a contiguous
    reduction axis).  A single-column matrix degenerates to exactly that
    contiguous case, so it is padded to two identical columns first —
    column 0 then accumulates in row order.  This is what makes packed
    forest means bit-identical to the object path's ``out += tree``
    loop even for single-sample predictions.
    """
    if V.shape[1] == 1:
        return np.concatenate([V, V], axis=1).sum(axis=0)[:1]
    return V.sum(axis=0)


class PackedForest:
    """A forest flattened into one contiguous node arena.

    Parameters are the canonical flat arrays: ``feature`` (``-1`` marks a
    leaf), ``threshold``, ``left``/``right`` (arena-global child indices,
    ``-1`` at leaves), ``value`` (leaf/node means) — all of length
    ``n_nodes`` — plus ``tree_offsets`` of length ``n_trees + 1`` where
    tree ``t`` owns nodes ``[tree_offsets[t], tree_offsets[t + 1])`` and
    its root is ``tree_offsets[t]``.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        tree_offsets: np.ndarray,
        n_features: int,
    ) -> None:
        self.feature = np.ascontiguousarray(feature, dtype=np.intp)
        self.threshold = np.ascontiguousarray(threshold, dtype=np.float64)
        self.left = np.ascontiguousarray(left, dtype=np.intp)
        self.right = np.ascontiguousarray(right, dtype=np.intp)
        self.value = np.ascontiguousarray(value, dtype=np.float64)
        self.tree_offsets = np.ascontiguousarray(tree_offsets, dtype=np.intp)
        self.n_features = int(n_features)
        self._validate_arena()
        self._finalize()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_trees(
        cls, trees: Sequence[TreeArrays], n_features: int
    ) -> "PackedForest":
        """Concatenate fitted :class:`TreeArrays` into one arena."""
        if not trees:
            raise ConfigurationError("Cannot pack an empty forest.")
        offsets = np.zeros(len(trees) + 1, dtype=np.intp)
        for t, tree in enumerate(trees):
            offsets[t + 1] = offsets[t] + tree.n_nodes
        feature = np.concatenate([t.feature for t in trees])
        threshold = np.concatenate([t.threshold for t in trees])
        left = np.empty(offsets[-1], dtype=np.intp)
        right = np.empty(offsets[-1], dtype=np.intp)
        for t, tree in enumerate(trees):
            base = offsets[t]
            leaf = tree.feature == _LEAF
            left[base : offsets[t + 1]] = np.where(
                leaf, _LEAF, tree.left + base
            )
            right[base : offsets[t + 1]] = np.where(
                leaf, _LEAF, tree.right + base
            )
        value = np.concatenate([t.value for t in trees])
        return cls(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=value,
            tree_offsets=offsets,
            n_features=n_features,
        )

    @classmethod
    def from_forest(cls, forest: object) -> "PackedForest":
        """Pack a fitted :class:`RandomForestRegressor`."""
        estimators = getattr(forest, "estimators_", None)
        if not estimators:
            raise ConfigurationError(
                "from_forest needs a fitted forest with estimators_."
            )
        return cls.from_trees(
            [est.tree_ for est in estimators],
            n_features=int(forest.n_features_in_),
        )

    def _validate_arena(self) -> None:
        n = self.feature.shape[0]
        for name in ("threshold", "left", "right", "value"):
            if getattr(self, name).shape != (n,):
                raise DataValidationError(
                    f"Packed arena array {name!r} has shape "
                    f"{getattr(self, name).shape}; expected ({n},)."
                )
        off = self.tree_offsets
        if off.ndim != 1 or off.size < 2 or off[0] != 0 or off[-1] != n:
            raise DataValidationError(
                "tree_offsets must run from 0 to n_nodes."
            )
        if np.any(np.diff(off) < 1):
            raise DataValidationError("Every packed tree needs >= 1 node.")
        internal = self.feature >= 0
        if np.any(self.feature[internal] >= self.n_features):
            raise DataValidationError(
                "Packed arena references features beyond n_features."
            )
        for child in (self.left[internal], self.right[internal]):
            if child.size and (
                np.any(child < 0) or np.any(child >= n)
            ):
                raise DataValidationError(
                    "Packed arena child index out of range."
                )

    def _finalize(self) -> None:
        """Derive the traversal-optimized arrays from the canonical ones."""
        nn = self.feature.shape[0]
        leaf = self.feature < 0
        idx = np.arange(nn, dtype=np.intp)
        self._internal = ~leaf
        self._feat = np.where(leaf, 0, self.feature)
        self._thr = np.where(leaf, np.inf, self.threshold)
        lft = np.where(leaf, idx, self.left)
        rgt = np.where(leaf, idx, self.right)
        self._lft = lft
        self._rgt = rgt
        children = np.empty(2 * nn, dtype=np.intp)
        children[0::2] = rgt  # go_left == False
        children[1::2] = lft  # go_left == True
        self._children = children
        self._roots = np.ascontiguousarray(self.tree_offsets[:-1])
        # Arena depth: child-steps guaranteeing every root reaches a leaf.
        # The same BFS stamps every node's depth, giving per-tree depths
        # so traversals over a subset of trees stop at *their* deepest
        # leaf instead of the arena-wide maximum.
        node_depth = np.zeros(nn, dtype=np.intp)
        depth = 0
        frontier = self._roots
        while True:
            frontier = frontier[self.feature[frontier] >= 0]
            if frontier.size == 0:
                break
            depth += 1
            if depth > nn:
                raise DataValidationError(
                    "Packed arena contains a cycle (corrupt child links)."
                )
            frontier = np.concatenate(
                [self.left[frontier], self.right[frontier]]
            )
            node_depth[frontier] = depth
        self.max_depth_ = depth
        self._tree_depths = np.maximum.reduceat(
            node_depth, self.tree_offsets[:-1]
        )

    # -- introspection -----------------------------------------------------

    @property
    def n_trees(self) -> int:
        return self.tree_offsets.shape[0] - 1

    @property
    def n_nodes(self) -> int:
        return self.feature.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PackedForest(n_trees={self.n_trees}, n_nodes={self.n_nodes}, "
            f"n_features={self.n_features}, max_depth={self.max_depth_})"
        )

    # -- traversal ---------------------------------------------------------

    def _validate_X(self, X: object) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise DataValidationError(
                f"X must be 2-D; got {X.ndim}-D array."
            )
        if X.shape[1] != self.n_features:
            raise DataValidationError(
                f"Expected {self.n_features} features, got {X.shape[1]}."
            )
        if not np.all(np.isfinite(X)):
            raise DataValidationError("X contains NaN or infinity.")
        return X

    def leaf_values(
        self,
        X: np.ndarray,
        tree_indices: np.ndarray | None = None,
        tree_range: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Leaf value of every (tree, sample) pair, shape ``(n_trees,
        n_samples)`` — the packed equivalent of per-tree ``predict``.

        ``X`` must already be validated C-contiguous float64 (use
        :meth:`predict_all` for the validating entry point).
        ``tree_indices`` restricts the traversal to a subset of trees;
        ``tree_range`` is the zero-overhead form for a *contiguous*
        block ``[t0, t1)`` (how per-scale forests live in the arena).
        """
        n = X.shape[0]
        depth: int | None = None
        if tree_range is not None:
            t0, t1 = tree_range
            roots = self._roots[t0:t1]
            tree_depths = self._tree_depths[t0:t1]
            lo = int(self.tree_offsets[t0])
            hi = int(self.tree_offsets[t1])
        elif tree_indices is None:
            roots = self._roots
            tree_depths = self._tree_depths
            lo, hi = 0, self.n_nodes
            depth = self.max_depth_
        else:
            tidx = np.asarray(tree_indices, dtype=np.intp)
            roots = self.tree_offsets[tidx]
            tree_depths = self._tree_depths[tidx]
            if tidx.size:
                lo = int(self.tree_offsets[int(tidx.min())])
                hi = int(self.tree_offsets[int(tidx.max()) + 1])
            else:
                lo = hi = 0
        nt = roots.shape[0]
        if n == 0 or nt == 0:
            return np.empty((nt, n), dtype=np.float64)
        if depth is None:
            depth = int(tree_depths.max())
        if n == 1:
            return self._walk_one(X[0], roots, lo, hi, depth).reshape(nt, 1)
        if nt * n <= _ACTIVE_SET_THRESHOLD:
            return self._walk_block(X, roots, depth)
        # Large loads stream tree chunks whose lane arrays fit in cache
        # (~half the active-set threshold); each chunk runs the cheap
        # fixed-depth loop bounded by its own deepest tree.
        chunk = max(1, _ACTIVE_SET_THRESHOLD // (2 * n))
        out = np.empty((nt, n), dtype=np.float64)
        for t0 in range(0, nt, chunk):
            t1 = min(nt, t0 + chunk)
            out[t0:t1] = self._walk_block(
                X, roots[t0:t1], int(tree_depths[t0:t1].max())
            )
        return out

    def _walk_one(
        self, row: np.ndarray, roots: np.ndarray, lo: int, hi: int, depth: int
    ) -> np.ndarray:
        """Latency path: leaf values of one sample under the trees rooted
        at ``roots``, all inside arena nodes ``[lo, hi)``.

        For compact node spans, every node's next hop is resolved up
        front (three vector ops over the span), leaving one gather per
        level.  When the span dwarfs the work actually visited
        (``n_trees * depth`` nodes), a per-level gather walk is cheaper.
        """
        if hi - lo <= 4096 * max(depth, 1):
            sl = slice(lo, hi)
            nxt = np.where(
                row[self._feat[sl]] <= self._thr[sl],
                self._lft[sl],
                self._rgt[sl],
            )
            if lo:
                nxt -= lo
                nodes = roots - lo
            else:
                nodes = roots
            for _ in range(depth):
                nodes = nxt[nodes]
            if lo:
                nodes = nodes + lo
        else:
            feat, thr, children = self._feat, self._thr, self._children
            nodes = roots
            for _ in range(depth):
                go = row[feat[nodes]] <= thr[nodes]
                nodes = children[2 * nodes + go]
        return self.value[nodes]

    def _walk_block(
        self, X: np.ndarray, roots: np.ndarray, depth: int
    ) -> np.ndarray:
        """Leaf values of every (tree, sample) lane for one tree block."""
        nt = roots.shape[0]
        n = X.shape[0]
        children = self._children
        feat = self._feat
        thr = self._thr
        xflat = X.reshape(-1)
        nodes = np.repeat(roots, n)
        samp_off = np.tile(np.arange(n, dtype=np.intp) * self.n_features, nt)
        if nodes.size <= _ACTIVE_SET_THRESHOLD:
            for _ in range(depth):
                go = xflat[samp_off + feat[nodes]] <= thr[nodes]
                nodes = children[2 * nodes + go]
        else:
            internal = self._internal
            idx = np.nonzero(internal[nodes])[0]
            while idx.size:
                cur = nodes[idx]
                go = xflat[samp_off[idx] + feat[cur]] <= thr[cur]
                nxt = children[2 * cur + go]
                nodes[idx] = nxt
                idx = idx[internal[nxt]]
        return self.value[nodes].reshape(nt, n)

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_trees, n_samples)`` —
        bit-identical to ``RandomForestRegressor.predict_all``."""
        return self.leaf_values(self._validate_X(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Forest-mean prediction, bit-identical to the object path.

        The per-tree matrix reduces via :func:`ordered_sum_axis0`, which
        accumulates tree by tree in index order — exactly the object
        path's sequential ``out += tree.predict(X)`` loop.
        """
        values = self.leaf_values(self._validate_X(X))
        return ordered_sum_axis0(values) / values.shape[0]

    # -- array export (artifact sidecar) -----------------------------------

    def to_arrays(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Canonical plain-ndarray form (the ``.npz`` sidecar payload)."""
        out = {prefix + name: getattr(self, name) for name in _CANONICAL}
        out[prefix + "n_features"] = np.asarray(self.n_features, dtype=np.int64)
        return out

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], prefix: str = ""
    ) -> "PackedForest":
        """Rebuild a forest saved with :meth:`to_arrays` (validates the
        arena invariants, so corrupt sidecars fail loudly)."""
        missing = [
            name
            for name in (*_CANONICAL, "n_features")
            if prefix + name not in arrays
        ]
        if missing:
            raise DataValidationError(
                f"Packed-forest arrays are missing {missing} "
                f"(prefix {prefix!r})."
            )
        return cls(
            feature=arrays[prefix + "feature"],
            threshold=arrays[prefix + "threshold"],
            left=arrays[prefix + "left"],
            right=arrays[prefix + "right"],
            value=arrays[prefix + "value"],
            tree_offsets=arrays[prefix + "tree_offsets"],
            n_features=int(np.asarray(arrays[prefix + "n_features"])),
        )
