"""Tree-based regressors: CART, random forest, gradient boosting."""

from .decision_tree import DecisionTreeRegressor, TreeArrays
from .gradient_boosting import GradientBoostingRegressor
from .packed import PackedForest
from .random_forest import RandomForestRegressor

__all__ = [
    "DecisionTreeRegressor",
    "TreeArrays",
    "GradientBoostingRegressor",
    "PackedForest",
    "RandomForestRegressor",
]
