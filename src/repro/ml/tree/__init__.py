"""Tree-based regressors: CART, random forest, gradient boosting."""

from .decision_tree import DecisionTreeRegressor, TreeArrays
from .gradient_boosting import GradientBoostingRegressor
from .random_forest import RandomForestRegressor

__all__ = [
    "DecisionTreeRegressor",
    "TreeArrays",
    "GradientBoostingRegressor",
    "RandomForestRegressor",
]
