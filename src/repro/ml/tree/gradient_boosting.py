"""Gradient-boosted regression trees (squared-error loss).

One of the direct-ML baselines the evaluation compares the two-level
model against.  With squared loss, each stage fits a shallow CART tree to
the current residuals; shrinkage and optional row subsampling
(stochastic gradient boosting) control overfitting.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, RegressorMixin, check_is_fitted
from ..validation import check_array, check_X_y, check_random_state, spawn_rngs
from .decision_tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Stage-wise additive model of shallow regression trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages.
    learning_rate:
        Shrinkage applied to each stage's contribution.
    max_depth, min_samples_leaf:
        Size limits of the per-stage trees (depth 3 default — stumps-plus,
        the classic GBM regime).
    subsample:
        Fraction of rows drawn (without replacement) per stage; < 1.0
        gives stochastic gradient boosting.
    random_state:
        Seed or Generator.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: object = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1.")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive.")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1].")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        stage_rngs = spawn_rngs(rng, self.n_estimators)

        self.init_ = float(y.mean())
        current = np.full(n_samples, self.init_)
        self.estimators_: list[DecisionTreeRegressor] = []
        self.train_score_: list[float] = []

        n_sub = max(1, int(round(self.subsample * n_samples)))
        for s_rng in stage_rngs:
            residual = y - current
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=s_rng,
            )
            if n_sub < n_samples:
                rows = s_rng.choice(n_samples, size=n_sub, replace=False)
                tree.fit(X[rows], residual[rows])
            else:
                tree.fit(X, residual)
            current += self.learning_rate * tree.tree_.predict(X)
            self.estimators_.append(tree)
            self.train_score_.append(float(np.mean((y - current) ** 2)))

        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out += self.learning_rate * tree.tree_.predict(X)
        return out

    def staged_predict(self, X: np.ndarray):
        """Yield predictions after each boosting stage (for CV of depth)."""
        check_is_fitted(self, "estimators_")
        X = check_array(X, min_samples=0)
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out = out + self.learning_rate * tree.tree_.predict(X)
            yield out.copy()
