"""CART regression tree with a vectorized prefix-sum splitter.

The splitter evaluates every candidate threshold of a feature in one pass
using cumulative sums of ``y`` and ``y^2`` over the sorted feature values
— no Python-level loop over thresholds — which keeps pure-numpy tree
construction fast enough for the forests used by the interpolation level.

Prediction is vectorized level-by-level: all samples walk the tree
simultaneously, so cost is O(depth * n_samples) numpy operations instead
of a per-sample Python traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..base import BaseEstimator, RegressorMixin, check_is_fitted
from ..validation import check_array, check_X_y, check_random_state

__all__ = ["DecisionTreeRegressor", "TreeArrays"]

_LEAF = -1


@dataclass
class TreeArrays:
    """Flat array representation of a fitted tree.

    ``feature[i] == -1`` marks node ``i`` as a leaf; ``value`` holds the
    mean target of the node's training samples for every node (internal
    nodes too, which supports truncated-depth prediction if ever needed).
    """

    feature: np.ndarray  # (n_nodes,) int
    threshold: np.ndarray  # (n_nodes,) float
    left: np.ndarray  # (n_nodes,) int
    right: np.ndarray  # (n_nodes,) int
    value: np.ndarray  # (n_nodes,) float
    n_node_samples: np.ndarray  # (n_nodes,) int
    impurity: np.ndarray  # (n_nodes,) float; node MSE

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature == _LEAF))

    @property
    def max_depth(self) -> int:
        """Depth of the deepest leaf (root = depth 0)."""
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        for i in range(self.n_nodes):
            if self.feature[i] != _LEAF:
                depth[self.left[i]] = depth[i] + 1
                depth[self.right[i]] = depth[i] + 1
        return int(depth.max()) if self.n_nodes else 0

    def predict(self, X: np.ndarray) -> np.ndarray:
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature[nodes] != _LEAF
        while np.any(active):
            idx = np.nonzero(active)[0]
            cur = nodes[idx]
            feat = self.feature[cur]
            go_left = X[idx, feat] <= self.threshold[cur]
            nodes[idx] = np.where(go_left, self.left[cur], self.right[cur])
            active[idx] = self.feature[nodes[idx]] != _LEAF
        return self.value[nodes]

    def decision_path_depth(self, X: np.ndarray) -> np.ndarray:
        """Depth at which each sample lands in a leaf."""
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        depth = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature[nodes] != _LEAF
        while np.any(active):
            idx = np.nonzero(active)[0]
            cur = nodes[idx]
            feat = self.feature[cur]
            go_left = X[idx, feat] <= self.threshold[cur]
            nodes[idx] = np.where(go_left, self.left[cur], self.right[cur])
            depth[idx] += 1
            active[idx] = self.feature[nodes[idx]] != _LEAF
        return depth


def _best_split_for_feature(
    values: np.ndarray,
    y: np.ndarray,
    min_samples_leaf: int,
) -> tuple[float, float]:
    """Best (impurity_decrease_total, threshold) for one feature.

    ``impurity_decrease_total`` is the reduction in total SSE (not
    normalized), which is what greedy CART maximizes at a node.  Returns
    ``(-inf, nan)`` when no valid split exists.
    """
    order = np.argsort(values, kind="stable")
    v = values[order]
    ys = y[order]
    n = len(ys)

    csum = np.cumsum(ys)
    csum_sq = np.cumsum(ys * ys)
    total_sum = csum[-1]
    total_sq = csum_sq[-1]
    total_sse = total_sq - total_sum * total_sum / n

    # Candidate split after position i puts i+1 samples left.  Valid
    # positions: leaf-size respected on both sides and a strict value
    # change (ties must stay on one side).
    pos = np.arange(n - 1)
    valid = (
        (pos + 1 >= min_samples_leaf)
        & (n - (pos + 1) >= min_samples_leaf)
        & (v[pos] < v[pos + 1])
    )
    if not np.any(valid):
        return -np.inf, np.nan

    pos = pos[valid]
    n_left = (pos + 1).astype(np.float64)
    n_right = n - n_left
    sum_left = csum[pos]
    sq_left = csum_sq[pos]
    sse = (
        (sq_left - sum_left * sum_left / n_left)
        + ((total_sq - sq_left) - (total_sum - sum_left) ** 2 / n_right)
    )
    best = int(np.argmin(sse))
    decrease = float(total_sse - sse[best])
    p = pos[best]
    # Midpoint threshold, robust against representational ties.
    threshold = 0.5 * (v[p] + v[p + 1])
    if threshold <= v[p]:
        threshold = v[p + 1] if v[p + 1] > v[p] else v[p]
    return decrease, float(threshold)


def _best_split_all_features(
    X_node: np.ndarray,
    y: np.ndarray,
    min_samples_leaf: int,
) -> tuple[float, int, float]:
    """Best split over every column of ``X_node`` in one vectorized pass.

    Sorts all columns at once and evaluates every candidate threshold of
    every feature with 2-D prefix sums — no Python loop over features or
    thresholds.  Returns ``(impurity_decrease_total, feature,
    threshold)`` or ``(-inf, -1, nan)`` when no valid split exists.
    """
    n, f = X_node.shape
    order = np.argsort(X_node, axis=0, kind="stable")  # (n, f)
    v = np.take_along_axis(X_node, order, axis=0)
    ys = y[order]  # (n, f): y re-sorted per feature

    csum = np.cumsum(ys, axis=0)
    csum_sq = np.cumsum(ys * ys, axis=0)
    total_sum = csum[-1, 0]
    total_sq = csum_sq[-1, 0]
    total_sse = total_sq - total_sum * total_sum / n

    pos = np.arange(n - 1)
    n_left = (pos + 1).astype(np.float64)[:, None]
    n_right = n - n_left
    sum_left = csum[:-1]
    sq_left = csum_sq[:-1]
    sse = (
        (sq_left - sum_left * sum_left / n_left)
        + ((total_sq - sq_left) - (total_sum - sum_left) ** 2 / n_right)
    )
    valid = (
        (n_left >= min_samples_leaf)
        & (n_right >= min_samples_leaf)
        & (v[:-1] < v[1:])
    )
    if not np.any(valid):
        return -np.inf, -1, np.nan
    sse = np.where(valid, sse, np.inf)
    flat = int(np.argmin(sse))
    p, feat = divmod(flat, f)
    best_sse = sse[p, feat]
    if not np.isfinite(best_sse):
        return -np.inf, -1, np.nan
    threshold = 0.5 * (v[p, feat] + v[p + 1, feat])
    if threshold <= v[p, feat]:
        threshold = v[p + 1, feat]
    return float(total_sse - best_sse), int(feat), float(threshold)


def _resolve_max_features(max_features: object, n_features: int) -> int:
    if max_features is None:
        return n_features
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        raise ValueError(f"Unknown max_features string {max_features!r}")
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("Fractional max_features must be in (0, 1].")
        return max(1, int(round(max_features * n_features)))
    mf = int(max_features)
    if not 1 <= mf <= n_features:
        raise ValueError(f"max_features must be in [1, {n_features}]; got {mf}.")
    return mf


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """Greedy CART regression tree (squared-error criterion).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; None grows until leaves are pure or too small.
    min_samples_split:
        Minimum samples required to consider splitting a node.
    min_samples_leaf:
        Minimum samples in each child of any split.
    max_features:
        Features examined per split: None (all), "sqrt", "log2", an int,
        or a fraction.  Random subsets are redrawn at every node, which is
        what decorrelates forest members.
    min_impurity_decrease:
        Minimum total-SSE reduction (normalized by n_samples) to accept a
        split.
    random_state:
        Seed or Generator for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: object = None,
        min_impurity_decrease: float = 0.0,
        random_state: object = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_indices: np.ndarray | None = None,
    ) -> "DecisionTreeRegressor":
        """Grow the tree.

        ``sample_indices`` lets ensembles pass a bootstrap view without
        copying the feature matrix.
        """
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2.")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1.")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None.")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        m_feat = _resolve_max_features(self.max_features, n_features)
        max_depth = np.inf if self.max_depth is None else self.max_depth

        if sample_indices is None:
            root_idx = np.arange(n_samples)
        else:
            root_idx = np.asarray(sample_indices, dtype=np.int64)
            if root_idx.size == 0:
                raise ValueError("sample_indices is empty.")

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        n_node: list[int] = []
        impurity: list[float] = []
        feat_importance = np.zeros(n_features)

        def new_node(idx: np.ndarray) -> int:
            node_id = len(feature)
            yi = y[idx]
            feature.append(_LEAF)
            threshold.append(np.nan)
            left.append(_LEAF)
            right.append(_LEAF)
            value.append(float(yi.mean()))
            n_node.append(len(idx))
            impurity.append(float(yi.var()))
            return node_id

        root = new_node(root_idx)
        stack: list[tuple[int, np.ndarray, int]] = [(root, root_idx, 0)]
        total_n = len(root_idx)

        while stack:
            node_id, idx, depth = stack.pop()
            n_here = len(idx)
            if (
                depth >= max_depth
                or n_here < self.min_samples_split
                or n_here < 2 * self.min_samples_leaf
                or impurity[node_id] == 0.0
            ):
                continue

            if m_feat < n_features:
                candidates = rng.choice(n_features, size=m_feat, replace=False)
            else:
                candidates = np.arange(n_features)

            y_here = y[idx]
            best_dec, local_feat, best_thr = _best_split_all_features(
                X[np.ix_(idx, candidates)], y_here, self.min_samples_leaf
            )
            best_feat = int(candidates[local_feat]) if local_feat >= 0 else -1

            if best_feat < 0 or not np.isfinite(best_dec):
                continue
            if best_dec / total_n < self.min_impurity_decrease:
                continue
            if best_dec <= 1e-12 * max(1.0, abs(impurity[node_id]) * n_here):
                continue  # numerically null improvement

            go_left = X[idx, best_feat] <= best_thr
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            if len(left_idx) == 0 or len(right_idx) == 0:
                continue

            feature[node_id] = best_feat
            threshold[node_id] = best_thr
            feat_importance[best_feat] += best_dec
            left_id = new_node(left_idx)
            right_id = new_node(right_idx)
            left[node_id] = left_id
            right[node_id] = right_id
            stack.append((left_id, left_idx, depth + 1))
            stack.append((right_id, right_idx, depth + 1))

        self.tree_ = TreeArrays(
            feature=np.asarray(feature, dtype=np.int64),
            threshold=np.asarray(threshold, dtype=np.float64),
            left=np.asarray(left, dtype=np.int64),
            right=np.asarray(right, dtype=np.int64),
            value=np.asarray(value, dtype=np.float64),
            n_node_samples=np.asarray(n_node, dtype=np.int64),
            impurity=np.asarray(impurity, dtype=np.float64),
        )
        total_importance = feat_importance.sum()
        self.feature_importances_ = (
            feat_importance / total_importance
            if total_importance > 0
            else np.zeros(n_features)
        )
        self.n_features_in_ = n_features
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return self.tree_.predict(X)

    def get_depth(self) -> int:
        check_is_fitted(self, "tree_")
        return self.tree_.max_depth

    def get_n_leaves(self) -> int:
        check_is_fitted(self, "tree_")
        return self.tree_.n_leaves
