"""Clustering: k-means++ and agglomerative linkage clustering."""

from .hierarchical import AgglomerativeClustering
from .kmeans import KMeans, kmeans_plus_plus_init

__all__ = ["AgglomerativeClustering", "KMeans", "kmeans_plus_plus_init"]
