"""K-means clustering with k-means++ seeding.

Used by the extrapolation level to group configurations by the shape of
their (normalized) small-scale performance curves, so each cluster can
get its own multitask-lasso scalability model.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, ClusterMixin, check_is_fitted
from ..metrics import pairwise_distances
from ..validation import check_array, check_random_state

__all__ = ["KMeans", "kmeans_plus_plus_init"]


def kmeans_plus_plus_init(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: later centers drawn ~ squared distance to the
    nearest already-chosen center."""
    n = X.shape[0]
    centers = np.empty((n_clusters, X.shape[1]))
    first = int(rng.integers(n))
    centers[0] = X[first]
    d2 = np.sum((X - centers[0]) ** 2, axis=1)
    for k in range(1, n_clusters):
        total = d2.sum()
        if total <= 0:
            # All remaining points coincide with a center; pick uniformly.
            idx = int(rng.integers(n))
        else:
            probs = d2 / total
            idx = int(rng.choice(n, p=probs))
        centers[k] = X[idx]
        d2 = np.minimum(d2, np.sum((X - centers[k]) ** 2, axis=1))
    return centers


class KMeans(BaseEstimator, ClusterMixin):
    """Lloyd's algorithm with ``n_init`` random restarts.

    Empty clusters are re-seeded with the point farthest from its current
    center, so the fitted model always has exactly ``n_clusters`` centers
    (provided there are at least that many distinct points).

    Attributes
    ----------
    cluster_centers_ : (n_clusters, n_features)
    labels_ : (n_samples,)
    inertia_ : float
        Sum of squared distances to assigned centers (monotonically
        non-increasing across Lloyd iterations — a property test target).
    """

    def __init__(
        self,
        n_clusters: int = 3,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state: object = None,
    ) -> None:
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def _lloyd(
        self, X: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        for _ in range(self.max_iter):
            D = pairwise_distances(X, centers)
            labels = np.argmin(D, axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                mask = labels == k
                if np.any(mask):
                    new_centers[k] = X[mask].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-served point.
                    worst = int(np.argmax(D[np.arange(len(labels)), labels]))
                    new_centers[k] = X[worst]
            shift = float(np.sum((new_centers - centers) ** 2))
            centers = new_centers
            if shift <= self.tol:
                break
        D = pairwise_distances(X, centers)
        labels = np.argmin(D, axis=1)
        inertia = float(np.sum(D[np.arange(len(labels)), labels] ** 2))
        return centers, labels, inertia

    def fit(self, X: np.ndarray, y: object = None) -> "KMeans":
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1.")
        if self.n_init < 1:
            raise ValueError("n_init must be >= 1.")
        X = check_array(X, min_samples=self.n_clusters)
        rng = check_random_state(self.random_state)

        best: tuple[float, np.ndarray, np.ndarray] | None = None
        for _ in range(self.n_init):
            centers0 = kmeans_plus_plus_init(X, self.n_clusters, rng)
            centers, labels, inertia = self._lloyd(X, centers0)
            if best is None or inertia < best[0]:
                best = (inertia, centers, labels)
        assert best is not None
        self.inertia_, self.cluster_centers_, self.labels_ = best
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Index of the nearest fitted center for each row."""
        check_is_fitted(self, "cluster_centers_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return np.argmin(pairwise_distances(X, self.cluster_centers_), axis=1)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Distances to every center, shape ``(n_samples, n_clusters)``."""
        check_is_fitted(self, "cluster_centers_")
        X = check_array(X, min_samples=0)
        return pairwise_distances(X, self.cluster_centers_)
