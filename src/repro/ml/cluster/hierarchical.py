"""Agglomerative clustering (complete / average / single linkage).

Alternative to k-means for grouping scaling-curve shapes; exposed so the
cluster-count ablation can compare both clusterers.  Naive O(n^3)
implementation over an explicit distance matrix — the extrapolation level
clusters at most a few hundred configurations, where this is instant.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, ClusterMixin
from ..metrics import pairwise_distances
from ..validation import check_array

__all__ = ["AgglomerativeClustering"]

_LINKAGES = ("single", "complete", "average")


class AgglomerativeClustering(BaseEstimator, ClusterMixin):
    """Bottom-up merging of clusters until ``n_clusters`` remain.

    Attributes
    ----------
    labels_ : (n_samples,) int
        Cluster index per sample, relabeled to 0..n_clusters-1 in order
        of first appearance.
    merge_history_ : list of (i, j, distance)
        The merges performed, usable for a dendrogram.
    """

    def __init__(self, n_clusters: int = 2, linkage: str = "average") -> None:
        self.n_clusters = n_clusters
        self.linkage = linkage

    def fit(self, X: np.ndarray, y: object = None) -> "AgglomerativeClustering":
        if self.linkage not in _LINKAGES:
            raise ValueError(f"linkage must be one of {_LINKAGES}.")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1.")
        X = check_array(X, min_samples=self.n_clusters)
        n = X.shape[0]

        D = pairwise_distances(X)
        np.fill_diagonal(D, np.inf)
        # Active cluster bookkeeping: member lists + sizes.
        members: dict[int, list[int]] = {i: [i] for i in range(n)}
        sizes = {i: 1 for i in range(n)}
        active = set(range(n))
        history: list[tuple[int, int, float]] = []

        while len(active) > self.n_clusters:
            act = sorted(active)
            sub = D[np.ix_(act, act)]
            flat = int(np.argmin(sub))
            r, c = divmod(flat, len(act))
            i, j = act[r], act[c]
            if i > j:
                i, j = j, i
            dist = float(D[i, j])
            history.append((i, j, dist))

            # Lance-Williams update of distances from merged (i) to others.
            for k in active:
                if k in (i, j):
                    continue
                if self.linkage == "single":
                    new_d = min(D[i, k], D[j, k])
                elif self.linkage == "complete":
                    new_d = max(D[i, k], D[j, k])
                else:  # average
                    new_d = (
                        sizes[i] * D[i, k] + sizes[j] * D[j, k]
                    ) / (sizes[i] + sizes[j])
                D[i, k] = D[k, i] = new_d
            members[i].extend(members[j])
            sizes[i] += sizes[j]
            active.discard(j)
            D[j, :] = np.inf
            D[:, j] = np.inf

        labels = np.empty(n, dtype=np.int64)
        for new_label, root in enumerate(sorted(active)):
            labels[members[root]] = new_label
        self.labels_ = labels
        self.merge_history_ = history
        self.n_features_in_ = X.shape[1]
        return self
