"""k-nearest-neighbors regression (brute force).

One of the direct-ML baselines: kNN cannot extrapolate beyond the convex
hull of its training data at all, which makes it a useful lower bound in
the large-scale prediction comparison.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, RegressorMixin, check_is_fitted
from .metrics import pairwise_distances
from .validation import check_array, check_X_y

__all__ = ["KNeighborsRegressor"]


class KNeighborsRegressor(BaseEstimator, RegressorMixin):
    """Mean (or inverse-distance-weighted mean) of the k nearest targets.

    Parameters
    ----------
    n_neighbors:
        Number of neighbors k.
    weights:
        "uniform" averages the k targets; "distance" weights them by
        1/d with an exact-match fast path (a zero-distance neighbor takes
        all the weight).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsRegressor":
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1.")
        if self.weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'.")
        X, y = check_X_y(X, y)
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} > n_samples={X.shape[0]}."
            )
        self.X_train_ = X
        self.y_train_ = y
        self.n_features_in_ = X.shape[1]
        return self

    def kneighbors(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Distances and indices of the k nearest training samples."""
        check_is_fitted(self, "X_train_")
        X = check_array(X, min_samples=0)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        D = pairwise_distances(X, self.X_train_)
        k = self.n_neighbors
        idx = np.argpartition(D, k - 1, axis=1)[:, :k]
        rows = np.arange(X.shape[0])[:, None]
        d = D[rows, idx]
        order = np.argsort(d, axis=1, kind="stable")
        return d[rows, order], idx[rows, order]

    def predict(self, X: np.ndarray) -> np.ndarray:
        dist, idx = self.kneighbors(X)
        targets = self.y_train_[idx]
        if self.weights == "uniform":
            return targets.mean(axis=1)
        # Inverse-distance weights; rows containing an exact match use
        # only the zero-distance neighbors.
        exact = dist == 0.0
        out = np.empty(X.shape[0] if hasattr(X, "shape") else len(dist))
        has_exact = exact.any(axis=1)
        if np.any(has_exact):
            masked = np.where(exact, targets, 0.0)
            out[has_exact] = (
                masked[has_exact].sum(axis=1) / exact[has_exact].sum(axis=1)
            )
        rest = ~has_exact
        if np.any(rest):
            w = 1.0 / dist[rest]
            out[rest] = (w * targets[rest]).sum(axis=1) / w.sum(axis=1)
        return out
