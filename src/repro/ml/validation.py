"""Input validation helpers shared by every estimator in :mod:`repro.ml`.

Centralizing the checks keeps the numerical code in each estimator free of
defensive boilerplate and guarantees uniform error messages.  All helpers
return C-contiguous float64 arrays, which is what the vectorized kernels
(tree splitters, coordinate descent) assume for cache-friendly access.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataValidationError

__all__ = [
    "check_array",
    "check_X_y",
    "check_random_state",
    "check_consistent_length",
    "column_or_1d",
]


def check_array(
    X: object,
    *,
    ensure_2d: bool = True,
    allow_nan: bool = False,
    min_samples: int = 1,
    name: str = "X",
) -> np.ndarray:
    """Validate an array-like and return it as contiguous float64.

    Parameters
    ----------
    X:
        Array-like input.
    ensure_2d:
        Require exactly two dimensions; 1-D input raises with a hint to
        reshape.
    allow_nan:
        If False (default), any NaN or infinity raises ``ValueError``.
    min_samples:
        Minimum number of rows (or elements for 1-D output).
    name:
        Name used in error messages.
    """
    arr = np.ascontiguousarray(X, dtype=np.float64)
    if ensure_2d:
        if arr.ndim == 1:
            raise DataValidationError(
                f"{name} must be 2-D; got 1-D array. Reshape with "
                f"X.reshape(-1, 1) for a single feature."
            )
        if arr.ndim != 2:
            raise DataValidationError(f"{name} must be 2-D; got {arr.ndim}-D array.")
        if arr.shape[1] == 0:
            raise DataValidationError(f"{name} has 0 features.")
    if arr.shape[0] < min_samples:
        raise DataValidationError(
            f"{name} needs at least {min_samples} sample(s); got {arr.shape[0]}."
        )
    if not allow_nan and not np.all(np.isfinite(arr)):
        raise DataValidationError(f"{name} contains NaN or infinity.")
    return arr


def column_or_1d(y: object, *, name: str = "y") -> np.ndarray:
    """Return ``y`` as a contiguous 1-D float64 array.

    A single-column 2-D array is silently flattened; anything wider raises.
    """
    arr = np.asarray(y, dtype=np.float64)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise DataValidationError(f"{name} must be 1-D; got shape {arr.shape}.")
    if not np.all(np.isfinite(arr)):
        raise DataValidationError(f"{name} contains NaN or infinity.")
    return np.ascontiguousarray(arr)


def check_consistent_length(*arrays: object) -> None:
    """Raise if the given array-likes differ in their first dimension."""
    lengths = [len(np.asarray(a)) for a in arrays if a is not None]
    if len(set(lengths)) > 1:
        raise DataValidationError(f"Inconsistent sample counts: {lengths}")


def check_X_y(
    X: object,
    y: object,
    *,
    multi_output: bool = False,
    min_samples: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Joint validation of a feature matrix and target.

    With ``multi_output=True`` the target may be 2-D ``(n_samples,
    n_targets)``; otherwise it is coerced to 1-D.
    """
    X = check_array(X, min_samples=min_samples)
    if multi_output:
        y_arr = np.ascontiguousarray(y, dtype=np.float64)
        if y_arr.ndim == 1:
            y_arr = y_arr.reshape(-1, 1)
        if y_arr.ndim != 2:
            raise DataValidationError(f"y must be 1-D or 2-D; got {y_arr.ndim}-D.")
        if not np.all(np.isfinite(y_arr)):
            raise DataValidationError("y contains NaN or infinity.")
    else:
        y_arr = column_or_1d(y)
    check_consistent_length(X, y_arr)
    return X, y_arr


def check_random_state(seed: object) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts None (fresh entropy), an int seed, or an existing Generator
    (returned unchanged so that callers can thread one RNG through nested
    components, e.g. a forest handing streams to its trees).
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise DataValidationError(f"Cannot build a Generator from {seed!r}")


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used by ensemble estimators so that each member gets a reproducible,
    statistically independent stream.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
