"""Command-line interface.

Drives the library end to end without writing Python::

    python -m repro list-apps
    python -m repro generate --app stencil3d --configs 80 \
        --scales 32,64,128,256,512 --reps 2 --out history.json
    python -m repro describe --data history.json
    python -m repro fit --data history.json --out model.pkl
    python -m repro predict --model model.pkl \
        --set nx=256 --set iterations=300 --set ghost=2 --set check_freq=10 \
        --scales 1024,2048,4096
    python -m repro compare --app stencil3d --configs 60 --test-configs 20

    # serving loop: register a fitted model, inspect, serve over HTTP
    python -m repro save --model model.pkl --registry reg/ --name stencil
    python -m repro models --registry reg/
    python -m repro predict --registry reg/ --name stencil \
        --set nx=256 --set iterations=300 --set ghost=2 --set check_freq=10 \
        --scales 1024,2048,4096
    python -m repro serve --registry reg/ --port 8080

    # closed-loop collection campaign under a core-second allocation
    python -m repro campaign --app stencil3d --allocation 20000 \
        --rounds 3 --time-limit 10 --checkpoint camp/ \
        --registry reg/ --name stencil-campaign --keep-last 3
    python -m repro campaign --app stencil3d --allocation 20000 \
        --rounds 3 --time-limit 10 --checkpoint camp/ --resume

    # trace-scale histories: stream logs into a columnar shard store,
    # inspect/verify it, fit straight from the store directory
    python -m repro ingest --store hist/ --data runs.jsonl --data more.csv
    python -m repro store --store hist/
    python -m repro store --store hist/ --verify
    python -m repro store --store hist/ --export slice.json --scales 32,64
    python -m repro fit --data hist/ --out model.pkl

``fit`` writes a plain pickle (a working file); ``save`` turns it into
a versioned, checksummed registry artifact (see :mod:`repro.serve` and
``docs/serving.md``).  Datasets use the JSON/NPZ formats of
:mod:`repro.data.io` or a :mod:`repro.store` directory (see
``docs/data_plane.md``).
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
from pathlib import Path

import numpy as np

from .errors import ConfigurationError, ReproError
from .log import configure_logging

__all__ = ["main", "build_parser"]


def _parse_scales(text: str) -> list[int]:
    try:
        scales = [int(s) for s in text.split(",") if s]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"scales must be comma-separated integers; got {text!r}"
        ) from None
    if not scales:
        raise argparse.ArgumentTypeError("at least one scale required")
    return scales


def _require_writable_parent(path_str: str) -> Path:
    """Fail fast (exit 2) when an output path cannot possibly be
    written, instead of discovering it after minutes of fitting."""
    path = Path(path_str)
    parent = path.resolve().parent
    if not parent.is_dir():
        raise ConfigurationError(
            f"Output directory {parent} does not exist (or is not a "
            "directory)."
        )
    if not os.access(parent, os.W_OK | os.X_OK):
        raise ConfigurationError(
            f"Output directory {parent} is not writable."
        )
    if path.is_dir():
        raise ConfigurationError(
            f"Output path {path} is a directory, not a file."
        )
    return path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-level large-scale HPC performance prediction "
        "(reproduction of Zhou et al., IPDPSW 2020).",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="enable debug logging on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list available applications")
    sub.add_parser("list-machines", help="list machine presets")
    sub.add_parser("list-baselines", help="list direct-ML baselines")

    g = sub.add_parser("generate", help="simulate an execution history")
    g.add_argument("--app", required=True)
    g.add_argument("--configs", type=int, default=80)
    g.add_argument("--scales", type=_parse_scales,
                   default=[32, 64, 128, 256, 512])
    g.add_argument("--reps", type=int, default=2)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--machine", default="default-cluster")
    g.add_argument("--noise", type=float, default=0.03)
    g.add_argument("--time-limit", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget per run; runs over the limit "
                   "are killed and resubmitted (default: unlimited)")
    g.add_argument("--max-retries", type=int, default=0,
                   help="resubmissions granted to a timed-out run")
    g.add_argument("--escalation", type=float, default=1.0,
                   help="budget multiplier per resubmission (>= 1)")
    g.add_argument("--on-timeout", choices=["keep", "drop", "raise"],
                   default="keep",
                   help="timed-out-on-every-attempt runs: keep as "
                   "censored rows, drop, or abort (default: keep)")
    g.add_argument("--out", required=True, help=".json or .npz path")

    d = sub.add_parser("describe", help="summarize a stored history")
    d.add_argument("--data", required=True)

    v = sub.add_parser(
        "validate", help="check a stored history for dirty data"
    )
    v.add_argument("--data", required=True)
    v.add_argument("--sanitize", metavar="OUT",
                   help="also write a cleaned copy to this path")
    v.add_argument("--spike-ratio", type=float, default=5.0,
                   help="outlier threshold vs per-config minimum")
    v.add_argument("--censor-limit", type=float, default=None,
                   help="known wall-clock limit for censoring detection")
    v.add_argument("--min-scale-runs", type=int, default=2,
                   help="scales with fewer usable rows are flagged sparse")
    v.add_argument("--repair", choices=["drop", "impute"], default="drop",
                   help="with --sanitize: drop dirty rows, or impute "
                   "NaN/censored runtimes from repeat-group medians")

    i = sub.add_parser(
        "ingest",
        help="stream history files into a columnar shard store "
        "(out-of-core; bounded memory)",
    )
    i.add_argument("--store", required=True, metavar="DIR",
                   help="store directory (created on first ingest)")
    i.add_argument("--data", required=True, action="append",
                   metavar="FILE",
                   help="source file: .jsonl/.ndjson (one record per "
                   "line), .csv (header-addressed), or a legacy "
                   ".json/.npz dataset (repeatable)")
    i.add_argument("--format", choices=["auto", "jsonl", "csv"],
                   default="auto",
                   help="force a source format (default: by suffix)")
    i.add_argument("--chunk-rows", type=int, default=65536,
                   help="rows per ETL chunk (bounds peak memory)")
    i.add_argument("--app", default=None,
                   help="application name when the sources carry none")
    i.add_argument("--censor-limit", type=float, default=None,
                   help="known wall-clock limit; enables the (row-local) "
                   "censoring rule during ingest")
    i.add_argument("--repair", choices=["drop", "impute"], default="drop",
                   help="per-chunk sanitize repair mode")
    i.add_argument("--no-sanitize", action="store_true",
                   help="append raw rows without per-chunk sanitization")
    i.add_argument("--source", default=None, metavar="TAG",
                   help="provenance tag recorded on the appended shards "
                   "(default: the file name)")

    st = sub.add_parser(
        "store", help="inspect, verify, or export a history store"
    )
    st.add_argument("--store", required=True, metavar="DIR")
    st.add_argument("--verify", action="store_true",
                    help="recompute every shard fingerprint and the "
                    "store hash against the manifest")
    st.add_argument("--fsck", action="store_true",
                    help="classify damage per shard, quarantine broken "
                    "shards, and repair the manifest (exit 2 when "
                    "anything was quarantined)")
    st.add_argument("--export", default=None, metavar="OUT",
                    help="write a .json/.npz copy in the legacy dataset "
                    "format")
    st.add_argument("--export-parquet", default=None, metavar="OUT",
                    help="stream the store into a Parquet file "
                    "(requires the optional pyarrow)")
    st.add_argument("--scales", type=_parse_scales, default=None,
                    help="restrict --export to these process counts")

    f = sub.add_parser("fit", help="fit a two-level model on a history")
    f.add_argument("--data", required=True)
    f.add_argument("--small-scales", type=_parse_scales, default=None,
                   help="default: every scale in the history")
    f.add_argument("--clusters", type=int, default=3)
    f.add_argument("--max-terms", type=int, default=3)
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--sanitize", action="store_true",
                   help="repair the history before fitting (same rules "
                   "as `repro validate --sanitize`); without it the "
                   "history is only validated and warnings printed")
    f.add_argument("--spike-ratio", type=float, default=5.0,
                   help="outlier threshold vs per-config minimum")
    f.add_argument("--censor-limit", type=float, default=None,
                   help="known wall-clock limit for censoring detection")
    f.add_argument("--min-scale-runs", type=int, default=2,
                   help="scales with fewer usable rows are flagged sparse")
    f.add_argument("--repair", choices=["drop", "impute"], default="drop",
                   help="with --sanitize: drop dirty rows, or impute "
                   "NaN/censored runtimes from repeat-group medians")
    f.add_argument("--out", required=True, help="pickle path for the model")

    s = sub.add_parser(
        "save", help="register a fitted model in a model registry"
    )
    s.add_argument("--model", required=True,
                   help="pickle written by `repro fit`")
    s.add_argument("--registry", required=True,
                   help="registry directory (created if missing)")
    s.add_argument("--name", required=True, help="model name to register as")
    s.add_argument("--meta", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="extra manifest metadata (repeatable)")
    s.add_argument("--pin", action="store_true",
                   help="pin the name to the new version")
    s.add_argument("--packed", dest="packed", action="store_true",
                   default=None,
                   help="require the packed-forest sidecar (error if "
                   "the model cannot be packed; default: auto)")
    s.add_argument("--no-packed", dest="packed", action="store_false",
                   help="save without a packed-forest sidecar")
    s.add_argument("--packed-compress", action="store_true",
                   help="compress the sidecar (smaller, but loads "
                   "eagerly instead of memory-mapping)")

    m = sub.add_parser(
        "models", help="list/inspect/manage a model registry"
    )
    m.add_argument("--registry", required=True)
    m.add_argument("--name", default=None,
                   help="inspect (or manage) one model")
    m.add_argument("--version", type=int, default=None,
                   help="a specific version (default: pin/latest)")
    m.add_argument("--delete", action="store_true",
                   help="delete the named model (or one --version of it)")
    m.add_argument("--pin-version", type=int, default=None, metavar="V",
                   help="pin the named model to version V")
    m.add_argument("--unpin", action="store_true",
                   help="remove the named model's pin")
    m.add_argument("--prune", type=int, default=None, metavar="N",
                   help="keep only the newest N versions (pinned "
                   "versions always survive); with --name prunes one "
                   "model, else the whole registry")
    m.add_argument("--fsck", action="store_true",
                   help="check every stored version, quarantine damaged "
                   "ones (exit 2 when anything was quarantined)")

    p = sub.add_parser("predict", help="predict runtimes with a fitted model")
    p.add_argument("--model", default=None,
                   help="pickle written by `repro fit`")
    p.add_argument("--registry", default=None,
                   help="predict from a registry instead of a pickle")
    p.add_argument("--name", default=None,
                   help="registry model name (with --registry)")
    p.add_argument("--version", type=int, default=None,
                   help="registry model version (default: pin/latest)")
    p.add_argument("--set", action="append", default=[], metavar="NAME=VALUE",
                   help="application parameter (repeatable)")
    p.add_argument("--scales", type=_parse_scales, required=True)
    p.add_argument("--interval", type=float, default=None, metavar="LEVEL",
                   help="also print an interpolation-noise band at this "
                   "coverage level (e.g. 0.9); needs a forest-based model")
    p.add_argument("--samples", type=int, default=40,
                   help="Monte-Carlo samples for --interval")

    c = sub.add_parser(
        "compare", help="end-to-end protocol: two-level vs baselines"
    )
    c.add_argument("--app", required=True)
    c.add_argument("--configs", type=int, default=60)
    c.add_argument("--test-configs", type=int, default=20)
    c.add_argument("--small-scales", type=_parse_scales,
                   default=[32, 64, 128, 256, 512])
    c.add_argument("--large-scales", type=_parse_scales,
                   default=[1024, 2048, 4096])
    c.add_argument("--reps", type=int, default=2)
    c.add_argument("--seed", type=int, default=42)
    c.add_argument("--baselines", default=None,
                   help="comma-separated subset (default: all)")

    ca = sub.add_parser(
        "campaign",
        help="run a closed-loop history-collection campaign "
        "(plan -> execute -> sanitize -> refit -> register)",
    )
    ca.add_argument("--app", required=True)
    ca.add_argument("--allocation", type=float, required=True,
                    metavar="CORE_SECONDS",
                    help="total core-second allocation; every attempt "
                    "and backoff is charged against it")
    ca.add_argument("--rounds", type=int, default=3,
                    help="planner rounds after the seed round")
    ca.add_argument("--round-budget", type=float, default=None,
                    metavar="CORE_SECONDS",
                    help="core-seconds per planner round (default: "
                    "allocation / (rounds + 1))")
    ca.add_argument("--seed-configs", type=int, default=10,
                    help="Latin-hypercube bundles in the seed round")
    ca.add_argument("--max-bundles", type=int, default=128,
                    help="hard cap on bundles per round")
    ca.add_argument("--small-scales", type=_parse_scales,
                    default=[32, 64, 128],
                    help="process counts every bundle is executed at")
    ca.add_argument("--eval-scales", type=_parse_scales, default=[512, 1024],
                    help="large scales the MAPE trajectory is measured at")
    ca.add_argument("--candidates", type=int, default=100,
                    help="candidate pool scored per round")
    ca.add_argument("--eval-configs", type=int, default=20,
                    help="held-out oracle evaluation configurations")
    ca.add_argument("--selection", choices=["planner", "random", "grid"],
                    default="planner",
                    help="bundle-selection strategy (random/grid are "
                    "benchmark baselines)")
    ca.add_argument("--time-limit", type=float, default=60.0,
                    metavar="SECONDS",
                    help="wall-clock budget per run (bounds worst-case "
                    "cost; killed runs are charged and retried)")
    ca.add_argument("--max-retries", type=int, default=1,
                    help="resubmissions granted to a timed-out run")
    ca.add_argument("--escalation", type=float, default=1.5,
                    help="budget multiplier per resubmission (>= 1)")
    ca.add_argument("--mape-target", type=float, default=None,
                    help="stop once the round MAPE reaches this")
    ca.add_argument("--clusters", type=int, default=3)
    ca.add_argument("--machine", default="default-cluster")
    ca.add_argument("--noise", type=float, default=0.03)
    ca.add_argument("--seed", type=int, default=0)
    ca.add_argument("--checkpoint", required=True, metavar="DIR",
                    help="directory for the campaign.json checkpoint")
    ca.add_argument("--store", default=None, metavar="DIR",
                    help="back the campaign's history with a shard "
                    "store at DIR: rows land there (exactly-once on "
                    "resume) and checkpoints stay O(metadata)")
    ca.add_argument("--resume", action="store_true",
                    help="continue a killed campaign from its checkpoint")
    ca.add_argument("--registry", default=None,
                    help="register each round's model in this registry")
    ca.add_argument("--name", default="campaign",
                    help="registry model name (with --registry)")
    ca.add_argument("--keep-last", type=int, default=None, metavar="N",
                    help="prune the registry to N versions after each "
                    "round (with --registry)")

    sv = sub.add_parser(
        "serve", help="serve registry models over HTTP (JSON endpoints)"
    )
    sv.add_argument("--registry", required=True)
    sv.add_argument("--name", default=None,
                    help="default model for requests that omit one")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8080,
                    help="TCP port (0 = ephemeral; the bound port is "
                    "printed on startup)")
    sv.add_argument("--cache-size", type=int, default=4096,
                    help="LRU prediction-cache entries per model")
    sv.add_argument("--rate-limit", type=float, default=None, metavar="R",
                    help="token-bucket rate limit in requests/second "
                    "for the prediction routes (429 over budget; "
                    "default: unlimited)")
    sv.add_argument("--burst", type=float, default=None,
                    help="token-bucket burst capacity (default: "
                    "max(1, rate))")
    sv.add_argument("--deadline", type=float, default=None, metavar="SEC",
                    help="per-request deadline in seconds (504 when "
                    "blown; default: none)")
    sv.add_argument("--reload-interval", type=float, default=1.0,
                    metavar="SEC",
                    help="how often name resolution re-checks the "
                    "registry for new versions (hot reload)")
    sv.add_argument("--no-stale", action="store_true",
                    help="fail (503) instead of serving the "
                    "last-known-good version when a model load fails")
    sv.add_argument("--no-packed", action="store_true",
                    help="serve from the object prediction path even "
                    "when a packed pipeline is available (debugging "
                    "escape hatch; predictions are bit-identical)")
    sv.add_argument("--auth-token", default=None, metavar="TOKEN",
                    help="require 'Authorization: Bearer TOKEN' on every "
                    "POST route (401 otherwise; GET routes stay open). "
                    "Defaults to $REPRO_AUTH_TOKEN when set.")
    sv.add_argument("--store", default=None, metavar="DIR",
                    help="history store served by POST /waste "
                    "(resource-waste reports; default: /waste disabled)")

    sc = sub.add_parser(
        "sched",
        help="scheduler intelligence: queue simulation, wait-model "
        "fitting, waste reports, what-if planning",
    )
    scs = sc.add_subparsers(dest="sched_command", required=True)

    scq = scs.add_parser(
        "simulate", help="run the background queue simulator and sample "
        "wait-time observations"
    )
    scq.add_argument("--nodes", type=int, default=1024,
                     help="cluster node-pool size")
    scq.add_argument("--arrival-rate", type=float, default=0.01,
                     help="background jobs per second")
    scq.add_argument("--horizon", type=float, default=2 * 86400.0,
                     help="background-trace length in seconds")
    scq.add_argument("--seed", type=int, default=0)
    scq.add_argument("--probes", type=int, default=0, metavar="N",
                     help="sample N wait observations (training data "
                     "for 'sched fit-wait')")
    scq.add_argument("--out", default=None,
                     help="write sampled observations as JSON")

    scw = scs.add_parser(
        "fit-wait", help="fit a queue-wait predictor on sampled "
        "observations and register/save it"
    )
    scw.add_argument("--observations", required=True,
                     help="JSON file from 'sched simulate --out'")
    scw.add_argument("--trees", type=int, default=64)
    scw.add_argument("--seed", type=int, default=0)
    scw.add_argument("--registry", default=None,
                     help="register the wait model here (with --name)")
    scw.add_argument("--name", default="queue-wait",
                     help="registry model name (default: queue-wait)")
    scw.add_argument("--out", default=None, metavar="DIR",
                     help="save the artifact to a bare directory instead "
                     "of a registry")

    scz = scs.add_parser(
        "waste", help="streaming resource-waste report over a history "
        "store"
    )
    scz.add_argument("--store", required=True, metavar="DIR")
    scz.add_argument("--time-limit", type=float, default=None,
                     metavar="SECONDS",
                     help="partition time limit every run requested "
                     "(enables over-request and kill accounting)")
    scz.add_argument("--chunk-rows", type=int, default=65536)
    scz.add_argument("--json", default=None, metavar="OUT",
                     help="also write the full report as JSON")

    scf = scs.add_parser(
        "whatif", help="sweep candidate scales into a cost/turnaround "
        "Pareto frontier"
    )
    scf.add_argument("--registry", required=True)
    scf.add_argument("--name", required=True,
                     help="runtime model name in the registry")
    scf.add_argument("--version", type=int, default=None)
    scf.add_argument("--set", action="append", default=[],
                     metavar="NAME=VALUE",
                     help="application parameter (repeatable)")
    scf.add_argument("--scales", type=_parse_scales, required=True)
    scf.add_argument("--wait-name", default=None,
                     help="wait-model name in the same registry "
                     "(adds queue-wait estimates)")
    scf.add_argument("--wait-version", type=int, default=None)
    scf.add_argument("--queue-state", default=None, metavar="JSON",
                     help="queue-state features as inline JSON, e.g. "
                     "'{\"queue_depth\": 12, \"free_nodes\": 80}'")
    scf.add_argument("--deadline", type=float, default=None,
                     help="turnaround bound in seconds")
    scf.add_argument("--budget-core-hours", type=float, default=None)
    scf.add_argument("--limit-margin", type=float, default=1.5)
    return parser


# -- subcommand implementations ------------------------------------------------


def _cmd_list_apps(args, out) -> int:
    from .apps import ALL_APPS, get_app

    for name in sorted(ALL_APPS):
        app = get_app(name)
        params = ", ".join(app.param_names)
        print(f"{name:12s} params: {params}", file=out)
    return 0


def _cmd_list_machines(args, out) -> int:
    from .sim import MACHINE_PRESETS, get_machine

    for name in sorted(MACHINE_PRESETS):
        m = get_machine(name)
        print(
            f"{name:20s} {m.topology.name:28s} "
            f"{m.topology.n_hosts()} nodes x {m.node.cores} cores",
            file=out,
        )
    return 0


def _cmd_list_baselines(args, out) -> int:
    from .baselines import BASELINE_FACTORIES

    for name in sorted(BASELINE_FACTORIES):
        print(name, file=out)
    return 0


def _cmd_generate(args, out) -> int:
    from .apps import get_app
    from .data import HistoryGenerator, save_dataset
    from .sim import (
        ExecutionBudget,
        Executor,
        NoiseModel,
        RetryPolicy,
        get_machine,
    )

    app = get_app(args.app)
    budget = (
        ExecutionBudget(limit=args.time_limit)
        if args.time_limit is not None
        else None
    )
    retry = (
        RetryPolicy(max_attempts=args.max_retries + 1,
                    escalation=args.escalation)
        if budget is not None
        else None
    )
    executor = Executor(
        machine=get_machine(args.machine),
        noise=NoiseModel(sigma=args.noise),
        seed=args.seed,
        budget=budget,
        retry=retry,
    )
    gen = HistoryGenerator(app, executor=executor, seed=args.seed,
                           on_timeout=args.on_timeout)
    dataset = gen.generate(args.configs, scales=args.scales,
                           repetitions=args.reps)
    save_dataset(dataset, args.out)
    print(f"wrote {len(dataset)} runs to {args.out}", file=out)
    if budget is not None:
        print(gen.timeout_log.summary(), file=out)
    return 0


def _cmd_describe(args, out) -> int:
    from .data import load_dataset

    print(load_dataset(args.data).summary(), file=out)
    return 0


def _cmd_validate(args, out) -> int:
    from .data import load_dataset, save_dataset
    from .robustness import sanitize_dataset, validate_dataset

    dataset = load_dataset(args.data)
    report = validate_dataset(
        dataset,
        spike_ratio=args.spike_ratio,
        censor_limit=args.censor_limit,
        min_scale_runs=args.min_scale_runs,
    )
    print(report.summary(), file=out)
    if args.sanitize:
        clean, srep = sanitize_dataset(
            dataset,
            spike_ratio=args.spike_ratio,
            censor_limit=args.censor_limit,
            min_scale_runs=args.min_scale_runs,
            repair=args.repair,
        )
        save_dataset(clean, args.sanitize)
        print(srep.summary(), file=out)
        print(f"wrote {len(clean)} runs to {args.sanitize}", file=out)
        return 0
    return 0 if report.ok else 2


def _cmd_ingest(args, out) -> int:
    from .data import load_dataset
    from .store import DatasetExtractor, IngestPipeline, extractor_for_path

    pipeline = IngestPipeline(
        args.store,
        app_name=args.app,
        chunk_rows=args.chunk_rows,
        sanitize=not args.no_sanitize,
        censor_limit=args.censor_limit,
        repair=args.repair,
    )
    for path_str in args.data:
        path = Path(path_str)
        if args.format == "auto" and path.suffix in (".json", ".npz"):
            # Legacy whole-dataset formats have no streaming reader;
            # load once and re-chunk through the pipeline.
            extractor = DatasetExtractor(load_dataset(path))
        else:
            extractor = extractor_for_path(path, args.format)
        report = pipeline.run(extractor, source=args.source or path.name)
        print(report.summary(), file=out)
    store = pipeline.store
    if store is not None:
        print(
            f"store now holds {store.n_rows} rows in {store.n_shards} "
            f"shard(s) at {store.root}",
            file=out,
        )
    return 0


def _cmd_store(args, out) -> int:
    from .store import HistoryStore

    store = HistoryStore.open(args.store)
    acted = False
    if args.fsck:
        report = store.fsck(repair=True)
        print(report.summary(), file=out)
        if not report.clean:
            return 2
        acted = True
    if args.verify:
        summary = store.verify()
        print(
            f"verified {summary['shards']} shard(s), {summary['rows']} "
            f"rows: all fingerprints match"
            + (" (store hash STALE)" if summary["stale"] else ""),
            file=out,
        )
        acted = True
    if args.export is not None:
        _require_writable_parent(args.export)
        written = store.export_json(args.export, scales=args.scales)
        print(f"exported store slice to {written}", file=out)
        acted = True
    if args.export_parquet is not None:
        _require_writable_parent(args.export_parquet)
        written = store.export_parquet(args.export_parquet)
        print(f"exported store to {written}", file=out)
        acted = True
    if not acted:
        print(store.describe(), file=out)
    return 0


def _cmd_fit(args, out) -> int:
    from .core import TwoLevelModel
    from .data import dataset_fingerprint, load_dataset
    from .robustness import sanitize_dataset, validate_dataset

    _require_writable_parent(args.out)
    dataset = load_dataset(args.data)
    if args.sanitize:
        dataset, srep = sanitize_dataset(
            dataset,
            spike_ratio=args.spike_ratio,
            censor_limit=args.censor_limit,
            min_scale_runs=args.min_scale_runs,
            repair=args.repair,
        )
        if srep.rows_dropped or srep.rows_imputed:
            print(srep.summary(), file=out)
    else:
        report = validate_dataset(
            dataset,
            spike_ratio=args.spike_ratio,
            censor_limit=args.censor_limit,
            min_scale_runs=args.min_scale_runs,
        )
        if not report.clean:
            print(
                "warning: history is dirty (rerun with --sanitize to "
                "repair):\n" + report.summary(),
                file=sys.stderr,
            )
    small = args.small_scales or [int(s) for s in dataset.scales]
    model = TwoLevelModel(
        small_scales=small,
        n_clusters=args.clusters,
        max_terms=args.max_terms,
        random_state=args.seed,
    ).fit(dataset)
    if model.fit_report.degraded:
        print(model.fit_report.summary(), file=out)
    payload = {"app_name": dataset.app_name,
               "param_names": dataset.param_names,
               "model": model,
               "small_scales": small,
               "train_hash": dataset_fingerprint(dataset),
               "n_train_rows": len(dataset)}
    try:
        with open(args.out, "wb") as fh:
            pickle.dump(payload, fh)
    except OSError as exc:
        raise ConfigurationError(
            f"Cannot write model to {args.out}: {exc}"
        ) from exc
    print(f"fitted on {len(dataset)} runs at scales {small}", file=out)
    for cluster, terms in model.support_names().items():
        print(f"cluster {cluster}: {', '.join(terms) or '(constant)'}",
              file=out)
    print(f"wrote model to {args.out}", file=out)
    return 0


def _load_fit_payload(path: str) -> dict:
    """Read a `repro fit` pickle, with a clear error on junk files."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError) as exc:
        raise ConfigurationError(
            f"{path} is not a model file written by `repro fit`: {exc}"
        ) from exc
    if not isinstance(payload, dict) or "model" not in payload:
        raise ConfigurationError(
            f"{path} is not a model file written by `repro fit` "
            "(missing 'model' entry)."
        )
    return payload


def _cmd_save(args, out) -> int:
    from .serve import ModelArtifact, ModelRegistry

    payload = _load_fit_payload(args.model)
    metadata: dict[str, str] = {}
    for item in args.meta:
        if "=" not in item:
            print(f"error: --meta expects KEY=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        key, _, value = item.partition("=")
        metadata[key] = value
    artifact = ModelArtifact.create(
        payload["model"],
        app_name=payload["app_name"],
        param_names=payload["param_names"],
        scales=payload.get("small_scales"),
        train_hash=payload.get("train_hash"),
        n_train_rows=payload.get("n_train_rows"),
        metadata=metadata,
    )
    registry = ModelRegistry(args.registry)
    packed = "auto" if args.packed is None else args.packed
    version = registry.register(
        args.name, artifact,
        packed=packed, packed_compress=args.packed_compress,
    )
    if args.pin:
        registry.pin(args.name, version)
    print(
        f"registered {args.name} v{version:04d}"
        + (" (pinned)" if args.pin else "")
        + (" [packed]" if artifact.info.packed else "")
        + f" in {args.registry}",
        file=out,
    )
    return 0


def _cmd_models(args, out) -> int:
    from .serve import ModelRegistry

    registry = ModelRegistry(args.registry, create=False)
    if args.fsck:
        report = registry.fsck(repair=True)
        print(report.summary(), file=out)
        return 0 if report.clean else 2
    managing = args.delete or args.unpin or args.pin_version is not None
    if managing and not args.name:
        print("error: --delete/--pin-version/--unpin require --name",
              file=sys.stderr)
        return 2
    if args.prune is not None:
        if managing:
            print("error: --prune cannot be combined with "
                  "--delete/--pin-version/--unpin", file=sys.stderr)
            return 2
        removed = registry.prune(args.name, keep_last=args.prune)
        if not removed:
            print("nothing to prune", file=out)
        for name, versions in sorted(removed.items()):
            gone = ", ".join(f"v{v:04d}" for v in versions)
            print(f"pruned {name}: removed {gone}", file=out)
        return 0
    if args.delete:
        registry.delete(args.name, args.version)
        what = (
            f"{args.name} v{args.version:04d}"
            if args.version is not None
            else f"model {args.name}"
        )
        print(f"deleted {what}", file=out)
        return 0
    if args.pin_version is not None:
        registry.pin(args.name, args.pin_version)
        print(f"pinned {args.name} to v{args.pin_version:04d}", file=out)
        return 0
    if args.unpin:
        registry.unpin(args.name)
        print(f"unpinned {args.name}", file=out)
        return 0
    if args.name:
        version = registry.resolve(args.name, args.version)
        print(f"{args.name} v{version:04d} "
              f"(versions: {registry.versions(args.name)}, "
              f"pinned: {registry.pinned(args.name)})", file=out)
        print(registry.inspect(args.name, version).describe(), file=out)
        return 0
    print(registry.describe(), file=out)
    return 0


def _cmd_campaign(args, out) -> int:
    from .campaign import Campaign, CampaignConfig

    config = CampaignConfig(
        app_name=args.app,
        allocation_core_seconds=args.allocation,
        small_scales=tuple(args.small_scales),
        eval_scales=tuple(args.eval_scales),
        max_rounds=args.rounds,
        round_budget_core_seconds=args.round_budget,
        bundles_per_round=args.max_bundles,
        n_seed_configs=args.seed_configs,
        n_candidates=args.candidates,
        n_eval_configs=args.eval_configs,
        selection=args.selection,
        time_limit=args.time_limit,
        max_retries=args.max_retries,
        escalation=args.escalation,
        mape_target=args.mape_target,
        n_clusters=args.clusters,
        machine=args.machine,
        noise_sigma=args.noise,
        model_name=args.name,
        keep_last=args.keep_last,
        seed=args.seed,
    )
    registry = None
    if args.registry is not None:
        from .serve import ModelRegistry

        registry = ModelRegistry(args.registry)
    campaign = Campaign(
        config, args.checkpoint, registry=registry, store_dir=args.store
    )
    report = campaign.run(resume=args.resume)
    print(report.summary(), file=out)
    return 0


def _cmd_serve(args, out) -> int:
    from .serve import create_server

    auth_token = args.auth_token or os.environ.get("REPRO_AUTH_TOKEN")
    server = create_server(
        args.registry,
        host=args.host,
        port=args.port,
        default_model=args.name,
        cache_size=args.cache_size,
        deadline=args.deadline,
        rate=args.rate_limit,
        burst=args.burst,
        reload_interval=args.reload_interval,
        allow_stale=not args.no_stale,
        use_packed=not args.no_packed,
        auth_token=auth_token,
        waste_store=args.store,
    )
    host, port = server.server_address[:2]
    print(f"listening on http://{host}:{port}", file=out, flush=True)
    if args.rate_limit:
        print(f"rate limit: {args.rate_limit:g} req/s "
              f"(burst {server.limiter.burst:g})", file=out, flush=True)
    if auth_token:
        print("auth: bearer token required on POST routes",
              file=out, flush=True)
    print("endpoints: GET /healthz /models /metrics; "
          "POST /predict /batch /wait /whatif /waste (Ctrl-C to stop)",
          file=out, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        server.server_close()
    return 0


def _cmd_sched(args, out) -> int:
    handlers = {
        "simulate": _sched_simulate,
        "fit-wait": _sched_fit_wait,
        "waste": _sched_waste,
        "whatif": _sched_whatif,
    }
    return handlers[args.sched_command](args, out)


def _sched_simulate(args, out) -> int:
    import json

    from .sched import QueueConfig, QueueSimulator

    sim = QueueSimulator(QueueConfig(
        n_nodes=args.nodes,
        arrival_rate=args.arrival_rate,
        horizon=args.horizon,
        seed=args.seed,
    ))
    stats = sim.stats()
    print(f"background jobs : {stats['n_jobs']}", file=out)
    print(f"utilization     : {stats['utilization'] * 100:.1f}%", file=out)
    print(f"wait p50 / mean / max : {stats['p50_wait']:.0f} / "
          f"{stats['mean_wait']:.0f} / {stats['max_wait']:.0f} s", file=out)
    if args.probes:
        obs = sim.sample_observations(args.probes, seed=args.seed + 1)
        waits = [o.wait_seconds for o in obs]
        print(f"sampled {len(obs)} probes; mean wait "
              f"{sum(waits) / len(waits):.0f} s", file=out)
        if args.out:
            payload = {
                "config": {
                    "n_nodes": args.nodes,
                    "arrival_rate": args.arrival_rate,
                    "horizon": args.horizon,
                    "seed": args.seed,
                },
                "observations": [o.features() for o in obs],
            }
            _require_writable_parent(args.out).write_text(
                json.dumps(payload) + "\n"
            )
            print(f"wrote observations to {args.out}", file=out)
    return 0


def _sched_fit_wait(args, out) -> int:
    import json

    from .sched import WaitTimePredictor
    from .serve import ModelArtifact

    payload = json.loads(Path(args.observations).read_text())
    observations = payload["observations"]
    waits = [float(o.get("wait_seconds", 0.0)) for o in observations]
    predictor = WaitTimePredictor(
        n_estimators=args.trees, random_state=args.seed
    ).fit(observations, waits)
    artifact = ModelArtifact.create(
        predictor,
        app_name="queue",
        param_names=[],
        metadata={k: v for k, v in payload.get("config", {}).items()},
        n_train_rows=len(observations),
    )
    if args.registry is not None:
        from .serve import ModelRegistry

        registry = ModelRegistry(args.registry)
        version = registry.register(args.name, artifact)
        print(f"registered wait model {args.name!r} "
              f"v{version:04d} ({len(observations)} observations)",
              file=out)
    elif args.out is not None:
        artifact.save(args.out)
        print(f"saved wait model to {args.out}", file=out)
    else:
        print("error: fit-wait needs --registry or --out", file=sys.stderr)
        return 2
    return 0


def _sched_waste(args, out) -> int:
    import json

    from .sched import WasteReport
    from .store import HistoryStore

    store = HistoryStore.open(args.store)
    report = WasteReport().add_store(
        store, time_limit=args.time_limit, chunk_rows=args.chunk_rows
    )
    print(report.summary(), file=out)
    if args.json:
        _require_writable_parent(args.json).write_text(
            json.dumps(report.to_dict()) + "\n"
        )
        print(f"wrote report to {args.json}", file=out)
    return 0


def _sched_whatif(args, out) -> int:
    import json

    from .sched import WhatIfPlanner
    from .serve import KIND_WAIT_MODEL, ModelRegistry

    registry = ModelRegistry(args.registry, create=False)
    artifact = registry.load(args.name, args.version)
    param_names = artifact.info.param_names

    params: dict[str, float] = {}
    for item in args.set:
        if "=" not in item:
            print(f"error: --set expects NAME=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        name, _, value = item.partition("=")
        params[name] = float(value)
    missing = set(param_names) - set(params)
    if missing:
        print(f"error: missing parameters {sorted(missing)}",
              file=sys.stderr)
        return 2

    wait_model = None
    if args.wait_name is not None:
        wait_artifact = registry.load(args.wait_name, args.wait_version)
        if wait_artifact.info.kind != KIND_WAIT_MODEL:
            print(f"error: {args.wait_name!r} is kind "
                  f"{wait_artifact.info.kind!r}, not a wait model",
                  file=sys.stderr)
            return 2
        wait_model = wait_artifact.predictor

    queue_state = (
        json.loads(args.queue_state) if args.queue_state else None
    )

    x = np.array([[params[n] for n in param_names]])

    def runtime_predict(_x, scales):
        return artifact.predict_matrix(x, [int(s) for s in scales])[0]

    planner = WhatIfPlanner(
        runtime_predict,
        wait_model=wait_model,
        limit_margin=args.limit_margin,
    )
    result = planner.evaluate(
        x[0],
        args.scales,
        queue_state=queue_state,
        deadline=args.deadline,
        budget_core_hours=args.budget_core_hours,
    )
    frontier = {p.scale for p in result.frontier}
    rec = result.recommended
    print(f"{'scale':>7s} {'runtime(s)':>11s} {'wait(s)':>9s} "
          f"{'turnaround':>11s} {'core-h':>9s} {'flags':<10s}", file=out)
    for p in result.points:
        flags = []
        if p.scale in frontier:
            flags.append("frontier")
        if rec is not None and p.scale == rec.scale:
            flags.append("**best**")
        if not p.feasible:
            flags.append("infeasible")
        print(f"{p.scale:>7d} {p.runtime:>11.2f} {p.wait:>9.1f} "
              f"{p.turnaround:>11.1f} {p.core_hours:>9.3f} "
              f"{' '.join(flags):<10s}", file=out)
    if rec is None:
        print("no recommendation (no candidates)", file=out)
    elif not rec.feasible:
        print(f"no candidate satisfies the constraints; fastest option "
              f"is scale {rec.scale} "
              f"(turnaround {rec.turnaround:.1f} s, "
              f"{rec.core_hours:.3f} core-h)", file=out)
    else:
        print(f"recommended: scale {rec.scale} "
              f"(turnaround {rec.turnaround:.1f} s, "
              f"{rec.core_hours:.3f} core-h)", file=out)
    return 0


def _cmd_predict(args, out) -> int:
    if (args.model is None) == (args.registry is None):
        print("error: predict needs exactly one of --model or --registry",
              file=sys.stderr)
        return 2
    artifact = None
    if args.registry is not None:
        from .serve import ModelRegistry

        if not args.name:
            print("error: --registry requires --name", file=sys.stderr)
            return 2
        registry = ModelRegistry(args.registry, create=False)
        artifact = registry.load(args.name, args.version)
        model = artifact.predictor
        param_names = artifact.info.param_names
    else:
        payload = _load_fit_payload(args.model)
        model = payload["model"]
        param_names = payload["param_names"]

    params: dict[str, float] = {}
    for item in args.set:
        if "=" not in item:
            print(f"error: --set expects NAME=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        name, _, value = item.partition("=")
        params[name] = float(value)
    missing = set(param_names) - set(params)
    if missing:
        print(f"error: missing parameters {sorted(missing)}", file=sys.stderr)
        return 2
    extra = set(params) - set(param_names)
    if extra:
        print(f"error: unknown parameters {sorted(extra)}", file=sys.stderr)
        return 2

    x = np.array([[params[n] for n in param_names]])
    if artifact is not None:
        preds = artifact.predict_matrix(x, args.scales)[0]
    else:
        preds = model.predict(x, args.scales)[0]
    for scale, t in zip(args.scales, preds):
        print(f"t({scale} procs) = {t:.6g} s", file=out)

    if args.interval is not None:
        from .core import EnsembleUncertainty, TwoLevelModel

        if not isinstance(model, TwoLevelModel):
            print(
                "error: --interval needs a two-level model "
                f"(got a {type(model).__name__})",
                file=sys.stderr,
            )
            return 2

        unc = EnsembleUncertainty(
            model, n_samples=args.samples, level=args.interval, random_state=0
        )
        band = unc.predict_interval(x, args.scales)
        print(
            f"{100 * args.interval:.0f}% interpolation-noise bands "
            "(model-form error not included):",
            file=out,
        )
        for j, scale in enumerate(args.scales):
            print(
                f"t({scale} procs) in [{band.lower[0, j]:.6g}, "
                f"{band.upper[0, j]:.6g}] s",
                file=out,
            )
    return 0


def _cmd_compare(args, out) -> int:
    from .analysis import (
        ExperimentConfig,
        ascii_table,
        build_histories,
        format_percent,
        run_method_comparison,
    )

    cfg = ExperimentConfig(
        app_name=args.app,
        small_scales=tuple(args.small_scales),
        large_scales=tuple(args.large_scales),
        n_train_configs=args.configs,
        n_test_configs=args.test_configs,
        repetitions=args.reps,
        seed=args.seed,
    )
    histories = build_histories(cfg)
    baselines = args.baselines.split(",") if args.baselines else None
    results = run_method_comparison(histories, baselines=baselines)
    rows = [
        [r.name + (" *" if r.degraded else "")]
        + [format_percent(r.mape_by_scale[s]) for s in cfg.large_scales]
        + [format_percent(r.overall_mape)]
        for r in results
    ]
    print(
        ascii_table(
            ["method"] + [f"p={s}" for s in cfg.large_scales] + ["overall"],
            rows,
            title=f"{args.app}: large-scale MAPE (train scales "
            f"{list(cfg.small_scales)})",
        ),
        file=out,
    )
    for r in results:
        if r.degraded:
            print(
                f"* {r.name}: degraded fit — "
                + "; ".join(
                    f"[{e.stage}] {e.kind}" for e in r.fit_report
                ),
                file=out,
            )
    return 0


_COMMANDS = {
    "list-apps": _cmd_list_apps,
    "list-machines": _cmd_list_machines,
    "list-baselines": _cmd_list_baselines,
    "generate": _cmd_generate,
    "describe": _cmd_describe,
    "validate": _cmd_validate,
    "ingest": _cmd_ingest,
    "store": _cmd_store,
    "fit": _cmd_fit,
    "save": _cmd_save,
    "models": _cmd_models,
    "predict": _cmd_predict,
    "compare": _cmd_compare,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "sched": _cmd_sched,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code.

    Structured library failures (:class:`~repro.errors.ReproError`) exit
    with code 2 and a one-line ``error [Type]: message`` on stderr —
    never a traceback.  Other anticipated failures (unknown app, missing
    file) keep their historical exit code 1.
    """
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error [{type(exc).__name__}]: {exc}", file=sys.stderr)
        return 2
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
