"""Command-line interface.

Drives the library end to end without writing Python::

    python -m repro list-apps
    python -m repro generate --app stencil3d --configs 80 \
        --scales 32,64,128,256,512 --reps 2 --out history.json
    python -m repro describe --data history.json
    python -m repro fit --data history.json --out model.pkl
    python -m repro predict --model model.pkl \
        --set nx=256 --set iterations=300 --set ghost=2 --set check_freq=10 \
        --scales 1024,2048,4096
    python -m repro compare --app stencil3d --configs 60 --test-configs 20

Models are persisted with pickle (they are plain numpy-backed Python
objects); datasets use the JSON/NPZ formats of :mod:`repro.data.io`.
"""

from __future__ import annotations

import argparse
import pickle
import sys

import numpy as np

from .errors import ReproError
from .log import configure_logging

__all__ = ["main", "build_parser"]


def _parse_scales(text: str) -> list[int]:
    try:
        scales = [int(s) for s in text.split(",") if s]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"scales must be comma-separated integers; got {text!r}"
        ) from None
    if not scales:
        raise argparse.ArgumentTypeError("at least one scale required")
    return scales


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-level large-scale HPC performance prediction "
        "(reproduction of Zhou et al., IPDPSW 2020).",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="enable debug logging on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list available applications")
    sub.add_parser("list-machines", help="list machine presets")
    sub.add_parser("list-baselines", help="list direct-ML baselines")

    g = sub.add_parser("generate", help="simulate an execution history")
    g.add_argument("--app", required=True)
    g.add_argument("--configs", type=int, default=80)
    g.add_argument("--scales", type=_parse_scales,
                   default=[32, 64, 128, 256, 512])
    g.add_argument("--reps", type=int, default=2)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--machine", default="default-cluster")
    g.add_argument("--noise", type=float, default=0.03)
    g.add_argument("--time-limit", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget per run; runs over the limit "
                   "are killed and resubmitted (default: unlimited)")
    g.add_argument("--max-retries", type=int, default=0,
                   help="resubmissions granted to a timed-out run")
    g.add_argument("--escalation", type=float, default=1.0,
                   help="budget multiplier per resubmission (>= 1)")
    g.add_argument("--on-timeout", choices=["keep", "drop", "raise"],
                   default="keep",
                   help="timed-out-on-every-attempt runs: keep as "
                   "censored rows, drop, or abort (default: keep)")
    g.add_argument("--out", required=True, help=".json or .npz path")

    d = sub.add_parser("describe", help="summarize a stored history")
    d.add_argument("--data", required=True)

    v = sub.add_parser(
        "validate", help="check a stored history for dirty data"
    )
    v.add_argument("--data", required=True)
    v.add_argument("--sanitize", metavar="OUT",
                   help="also write a cleaned copy to this path")
    v.add_argument("--spike-ratio", type=float, default=5.0,
                   help="outlier threshold vs per-config minimum")
    v.add_argument("--censor-limit", type=float, default=None,
                   help="known wall-clock limit for censoring detection")
    v.add_argument("--min-scale-runs", type=int, default=2,
                   help="scales with fewer usable rows are flagged sparse")

    f = sub.add_parser("fit", help="fit a two-level model on a history")
    f.add_argument("--data", required=True)
    f.add_argument("--small-scales", type=_parse_scales, default=None,
                   help="default: every scale in the history")
    f.add_argument("--clusters", type=int, default=3)
    f.add_argument("--max-terms", type=int, default=3)
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--sanitize", action="store_true",
                   help="repair the history before fitting (same rules "
                   "as `repro validate --sanitize`); without it the "
                   "history is only validated and warnings printed")
    f.add_argument("--spike-ratio", type=float, default=5.0,
                   help="outlier threshold vs per-config minimum")
    f.add_argument("--censor-limit", type=float, default=None,
                   help="known wall-clock limit for censoring detection")
    f.add_argument("--min-scale-runs", type=int, default=2,
                   help="scales with fewer usable rows are flagged sparse")
    f.add_argument("--out", required=True, help="pickle path for the model")

    p = sub.add_parser("predict", help="predict runtimes with a fitted model")
    p.add_argument("--model", required=True)
    p.add_argument("--set", action="append", default=[], metavar="NAME=VALUE",
                   help="application parameter (repeatable)")
    p.add_argument("--scales", type=_parse_scales, required=True)
    p.add_argument("--interval", type=float, default=None, metavar="LEVEL",
                   help="also print an interpolation-noise band at this "
                   "coverage level (e.g. 0.9); needs a forest-based model")
    p.add_argument("--samples", type=int, default=40,
                   help="Monte-Carlo samples for --interval")

    c = sub.add_parser(
        "compare", help="end-to-end protocol: two-level vs baselines"
    )
    c.add_argument("--app", required=True)
    c.add_argument("--configs", type=int, default=60)
    c.add_argument("--test-configs", type=int, default=20)
    c.add_argument("--small-scales", type=_parse_scales,
                   default=[32, 64, 128, 256, 512])
    c.add_argument("--large-scales", type=_parse_scales,
                   default=[1024, 2048, 4096])
    c.add_argument("--reps", type=int, default=2)
    c.add_argument("--seed", type=int, default=42)
    c.add_argument("--baselines", default=None,
                   help="comma-separated subset (default: all)")
    return parser


# -- subcommand implementations ------------------------------------------------


def _cmd_list_apps(args, out) -> int:
    from .apps import ALL_APPS, get_app

    for name in sorted(ALL_APPS):
        app = get_app(name)
        params = ", ".join(app.param_names)
        print(f"{name:12s} params: {params}", file=out)
    return 0


def _cmd_list_machines(args, out) -> int:
    from .sim import MACHINE_PRESETS, get_machine

    for name in sorted(MACHINE_PRESETS):
        m = get_machine(name)
        print(
            f"{name:20s} {m.topology.name:28s} "
            f"{m.topology.n_hosts()} nodes x {m.node.cores} cores",
            file=out,
        )
    return 0


def _cmd_list_baselines(args, out) -> int:
    from .baselines import BASELINE_FACTORIES

    for name in sorted(BASELINE_FACTORIES):
        print(name, file=out)
    return 0


def _cmd_generate(args, out) -> int:
    from .apps import get_app
    from .data import HistoryGenerator, save_dataset
    from .sim import (
        ExecutionBudget,
        Executor,
        NoiseModel,
        RetryPolicy,
        get_machine,
    )

    app = get_app(args.app)
    budget = (
        ExecutionBudget(limit=args.time_limit)
        if args.time_limit is not None
        else None
    )
    retry = (
        RetryPolicy(max_attempts=args.max_retries + 1,
                    escalation=args.escalation)
        if budget is not None
        else None
    )
    executor = Executor(
        machine=get_machine(args.machine),
        noise=NoiseModel(sigma=args.noise),
        seed=args.seed,
        budget=budget,
        retry=retry,
    )
    gen = HistoryGenerator(app, executor=executor, seed=args.seed,
                           on_timeout=args.on_timeout)
    dataset = gen.generate(args.configs, scales=args.scales,
                           repetitions=args.reps)
    save_dataset(dataset, args.out)
    print(f"wrote {len(dataset)} runs to {args.out}", file=out)
    if budget is not None:
        print(gen.timeout_log.summary(), file=out)
    return 0


def _cmd_describe(args, out) -> int:
    from .data import load_dataset

    print(load_dataset(args.data).summary(), file=out)
    return 0


def _cmd_validate(args, out) -> int:
    from .data import load_dataset, save_dataset
    from .robustness import sanitize_dataset, validate_dataset

    dataset = load_dataset(args.data)
    report = validate_dataset(
        dataset,
        spike_ratio=args.spike_ratio,
        censor_limit=args.censor_limit,
        min_scale_runs=args.min_scale_runs,
    )
    print(report.summary(), file=out)
    if args.sanitize:
        clean, srep = sanitize_dataset(
            dataset,
            spike_ratio=args.spike_ratio,
            censor_limit=args.censor_limit,
            min_scale_runs=args.min_scale_runs,
        )
        save_dataset(clean, args.sanitize)
        print(srep.summary(), file=out)
        print(f"wrote {len(clean)} runs to {args.sanitize}", file=out)
        return 0
    return 0 if report.ok else 2


def _cmd_fit(args, out) -> int:
    from .core import TwoLevelModel
    from .data import load_dataset
    from .robustness import sanitize_dataset, validate_dataset

    dataset = load_dataset(args.data)
    if args.sanitize:
        dataset, srep = sanitize_dataset(
            dataset,
            spike_ratio=args.spike_ratio,
            censor_limit=args.censor_limit,
            min_scale_runs=args.min_scale_runs,
        )
        if srep.rows_dropped:
            print(srep.summary(), file=out)
    else:
        report = validate_dataset(
            dataset,
            spike_ratio=args.spike_ratio,
            censor_limit=args.censor_limit,
            min_scale_runs=args.min_scale_runs,
        )
        if not report.clean:
            print(
                "warning: history is dirty (rerun with --sanitize to "
                "repair):\n" + report.summary(),
                file=sys.stderr,
            )
    small = args.small_scales or [int(s) for s in dataset.scales]
    model = TwoLevelModel(
        small_scales=small,
        n_clusters=args.clusters,
        max_terms=args.max_terms,
        random_state=args.seed,
    ).fit(dataset)
    if model.fit_report.degraded:
        print(model.fit_report.summary(), file=out)
    payload = {"app_name": dataset.app_name,
               "param_names": dataset.param_names,
               "model": model}
    with open(args.out, "wb") as fh:
        pickle.dump(payload, fh)
    print(f"fitted on {len(dataset)} runs at scales {small}", file=out)
    for cluster, terms in model.support_names().items():
        print(f"cluster {cluster}: {', '.join(terms) or '(constant)'}",
              file=out)
    print(f"wrote model to {args.out}", file=out)
    return 0


def _cmd_predict(args, out) -> int:
    with open(args.model, "rb") as fh:
        payload = pickle.load(fh)
    model = payload["model"]
    param_names = payload["param_names"]

    params: dict[str, float] = {}
    for item in args.set:
        if "=" not in item:
            print(f"error: --set expects NAME=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        name, _, value = item.partition("=")
        params[name] = float(value)
    missing = set(param_names) - set(params)
    if missing:
        print(f"error: missing parameters {sorted(missing)}", file=sys.stderr)
        return 2
    extra = set(params) - set(param_names)
    if extra:
        print(f"error: unknown parameters {sorted(extra)}", file=sys.stderr)
        return 2

    x = np.array([[params[n] for n in param_names]])
    preds = model.predict(x, args.scales)[0]
    for scale, t in zip(args.scales, preds):
        print(f"t({scale} procs) = {t:.6g} s", file=out)

    if args.interval is not None:
        from .core import EnsembleUncertainty

        unc = EnsembleUncertainty(
            model, n_samples=args.samples, level=args.interval, random_state=0
        )
        band = unc.predict_interval(x, args.scales)
        print(
            f"{100 * args.interval:.0f}% interpolation-noise bands "
            "(model-form error not included):",
            file=out,
        )
        for j, scale in enumerate(args.scales):
            print(
                f"t({scale} procs) in [{band.lower[0, j]:.6g}, "
                f"{band.upper[0, j]:.6g}] s",
                file=out,
            )
    return 0


def _cmd_compare(args, out) -> int:
    from .analysis import (
        ExperimentConfig,
        ascii_table,
        build_histories,
        format_percent,
        run_method_comparison,
    )

    cfg = ExperimentConfig(
        app_name=args.app,
        small_scales=tuple(args.small_scales),
        large_scales=tuple(args.large_scales),
        n_train_configs=args.configs,
        n_test_configs=args.test_configs,
        repetitions=args.reps,
        seed=args.seed,
    )
    histories = build_histories(cfg)
    baselines = args.baselines.split(",") if args.baselines else None
    results = run_method_comparison(histories, baselines=baselines)
    rows = [
        [r.name + (" *" if r.degraded else "")]
        + [format_percent(r.mape_by_scale[s]) for s in cfg.large_scales]
        + [format_percent(r.overall_mape)]
        for r in results
    ]
    print(
        ascii_table(
            ["method"] + [f"p={s}" for s in cfg.large_scales] + ["overall"],
            rows,
            title=f"{args.app}: large-scale MAPE (train scales "
            f"{list(cfg.small_scales)})",
        ),
        file=out,
    )
    for r in results:
        if r.degraded:
            print(
                f"* {r.name}: degraded fit — "
                + "; ".join(
                    f"[{e.stage}] {e.kind}" for e in r.fit_report
                ),
                file=out,
            )
    return 0


_COMMANDS = {
    "list-apps": _cmd_list_apps,
    "list-machines": _cmd_list_machines,
    "list-baselines": _cmd_list_baselines,
    "generate": _cmd_generate,
    "describe": _cmd_describe,
    "validate": _cmd_validate,
    "fit": _cmd_fit,
    "predict": _cmd_predict,
    "compare": _cmd_compare,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code.

    Structured library failures (:class:`~repro.errors.ReproError`) exit
    with code 2 and a one-line ``error [Type]: message`` on stderr —
    never a traceback.  Other anticipated failures (unknown app, missing
    file) keep their historical exit code 1.
    """
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error [{type(exc).__name__}]: {exc}", file=sys.stderr)
        return 2
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
