"""Per-configuration scalability curve fitting (Extra-P-style baseline).

Given *measured* small-scale runtimes of a single configuration, search a
small hypothesis space of performance model normal forms

    t(p) = c0 + c1 * p^a * log2(p)^b,   a in A, b in B

and pick the hypothesis by cross-validated (leave-one-scale-out) error,
then extrapolate.  This is the classic single-configuration approach the
paper's extrapolation level generalizes (joint selection across a
cluster instead of per configuration) — and it also serves as the
known-configuration scalability baseline in extension experiment C.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np

__all__ = ["PerformanceModel", "fit_performance_model", "CurveFitBaseline"]

#: Extra-P-like exponent grids.
DEFAULT_EXPONENTS: tuple[float, ...] = (-1.5, -1.0, -2.0 / 3.0, -0.5, -1.0 / 3.0, 0.0, 1.0 / 3.0, 0.5, 1.0)
DEFAULT_LOG_EXPONENTS: tuple[float, ...] = (0.0, 1.0, 2.0)


@dataclass(frozen=True)
class PerformanceModel:
    """A fitted two-term performance model ``c0 + c1 p^a log2(p)^b``."""

    c0: float
    c1: float
    exponent: float
    log_exponent: float
    cv_error: float

    def __call__(self, p: np.ndarray | float) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        term = p**self.exponent * np.log2(np.maximum(p, 2.0)) ** self.log_exponent
        return np.maximum(self.c0 + self.c1 * term, 1e-12)

    def describe(self) -> str:
        return (
            f"{self.c0:.4g} + {self.c1:.4g} * p^{self.exponent:.3g}"
            f" * log2(p)^{self.log_exponent:.3g}"
        )


def _fit_hypothesis(
    p: np.ndarray, t: np.ndarray, a: float, b: float
) -> tuple[float, float, float]:
    """Weighted (relative-error) least squares for one (a, b) hypothesis;
    returns (c0, c1, sse) with coefficients clipped to >= 0."""
    term = p**a * np.log2(np.maximum(p, 2.0)) ** b
    A = np.column_stack([np.ones_like(p), term]) / t[:, None]
    bvec = np.ones_like(t)
    coef, _, _, _ = np.linalg.lstsq(A, bvec, rcond=None)
    coef = np.maximum(coef, 0.0)
    pred = np.maximum(coef[0] + coef[1] * term, 1e-12)
    sse = float(np.sum(np.log(pred / t) ** 2))
    return float(coef[0]), float(coef[1]), sse


def fit_performance_model(
    scales: Sequence[int],
    runtimes: Sequence[float],
    exponents: Sequence[float] = DEFAULT_EXPONENTS,
    log_exponents: Sequence[float] = DEFAULT_LOG_EXPONENTS,
) -> PerformanceModel:
    """Hypothesis search with leave-one-scale-out validation.

    The returned model's ``cv_error`` is the mean squared log error over
    the held-out scales of the winning hypothesis.
    """
    p = np.asarray(scales, dtype=np.float64)
    t = np.asarray(runtimes, dtype=np.float64)
    if p.ndim != 1 or p.shape != t.shape:
        raise ValueError("scales and runtimes must be matching 1-D sequences.")
    if len(p) < 3:
        raise ValueError("Need at least 3 scales to fit and validate.")
    if np.any(t <= 0):
        raise ValueError("Runtimes must be positive.")

    best: PerformanceModel | None = None
    for a, b in product(exponents, log_exponents):
        if a == 0.0 and b == 0.0:
            continue  # constant-only handled implicitly via c1 -> 0
        # Leave-one-out over scales.
        errs = []
        for i in range(len(p)):
            mask = np.ones(len(p), dtype=bool)
            mask[i] = False
            c0, c1, _ = _fit_hypothesis(p[mask], t[mask], a, b)
            term_i = p[i] ** a * np.log2(max(p[i], 2.0)) ** b
            pred = max(c0 + c1 * term_i, 1e-12)
            errs.append(np.log(pred / t[i]) ** 2)
        cv = float(np.mean(errs))
        if best is None or cv < best.cv_error:
            c0, c1, _ = _fit_hypothesis(p, t, a, b)
            best = PerformanceModel(c0, c1, a, b, cv)
    assert best is not None
    return best


class CurveFitBaseline:
    """Scalability extrapolation for *known* configurations.

    Fits an independent :class:`PerformanceModel` per configuration from
    its measured small-scale runtimes.  Cannot generalize to unseen
    configurations (it has no parameter model) — which is exactly the
    gap the two-level model's interpolation level closes.
    """

    def __init__(
        self,
        small_scales: Sequence[int],
        exponents: Sequence[float] = DEFAULT_EXPONENTS,
        log_exponents: Sequence[float] = DEFAULT_LOG_EXPONENTS,
    ) -> None:
        self.small_scales = tuple(int(s) for s in small_scales)
        if len(self.small_scales) < 3:
            raise ValueError("Need at least 3 small scales.")
        self.exponents = tuple(exponents)
        self.log_exponents = tuple(log_exponents)

    def fit(self, S: np.ndarray) -> "CurveFitBaseline":
        """``S``: (n_configs, n_small) measured runtimes."""
        S = np.asarray(S, dtype=np.float64)
        if S.ndim != 2 or S.shape[1] != len(self.small_scales):
            raise ValueError(
                f"S must have shape (n_configs, {len(self.small_scales)})."
            )
        self.models_ = [
            fit_performance_model(
                self.small_scales, S[i], self.exponents, self.log_exponents
            )
            for i in range(S.shape[0])
        ]
        return self

    def predict(self, large_scales: Sequence[int]) -> np.ndarray:
        """(n_configs, n_large) extrapolated runtimes."""
        if not hasattr(self, "models_"):
            raise RuntimeError("CurveFitBaseline is not fitted.")
        p = np.asarray([int(s) for s in large_scales], dtype=np.float64)
        return np.vstack([m(p) for m in self.models_])
