"""Direct-ML extrapolation baselines ("existing ML methods").

Each baseline is an ordinary regressor trained on ``(x, p)`` feature
vectors built from the small-scale history and asked to predict at large
``p`` — exactly the approach whose failure motivates the paper: test
scales lie outside the training distribution, violating the i.i.d.
hypothesis.  The registry of named baselines feeds the Table-2
comparison.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.dataset import ExecutionDataset
from ..ml.base import BaseEstimator
from ..ml.kernel import KernelRidge
from ..ml.linear.coordinate_descent import LassoCV
from ..ml.linear.ridge import RidgeCV
from ..ml.mlp import MLPRegressor
from ..ml.neighbors import KNeighborsRegressor
from ..ml.preprocessing import StandardScaler
from ..ml.tree.gradient_boosting import GradientBoostingRegressor
from ..ml.tree.random_forest import RandomForestRegressor

__all__ = [
    "DirectMLBaseline",
    "EnsembleOfBaselines",
    "BASELINE_FACTORIES",
    "make_baseline",
]


class DirectMLBaseline:
    """A regressor over joint ``(params..., nprocs)`` features.

    Parameters
    ----------
    model:
        Any estimator from :mod:`repro.ml`.
    log_target:
        Fit log-runtime (recommended for the same reasons as in the
        interpolation level).
    log_p_feature:
        Encode the scale as ``log2(p)`` instead of raw ``p`` — a common
        trick that changes *how* linear models extrapolate in p.
    log_x_features:
        Log-transform the application parameters too; with a linear
        ``model`` and log target this makes the baseline a global
        multi-parameter power law t = C * prod(x_d^a_d) * p^b — the
        classical analytic-modeling competitor.
    standardize:
        Standardize features before fitting (needed by kNN / kernel /
        MLP baselines).
    """

    def __init__(
        self,
        model: BaseEstimator,
        log_target: bool = True,
        log_p_feature: bool = True,
        log_x_features: bool = False,
        standardize: bool = True,
    ) -> None:
        self.model = model
        self.log_target = log_target
        self.log_p_feature = log_p_feature
        self.log_x_features = log_x_features
        self.standardize = standardize

    def _features(self, X: np.ndarray, nprocs: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if self.log_x_features:
            if np.any(X <= 0):
                raise ValueError(
                    "log_x_features requires strictly positive parameters."
                )
            X = np.log2(X)
        p = np.asarray(nprocs, dtype=np.float64)
        p_col = np.log2(p) if self.log_p_feature else p
        return np.column_stack([X, p_col])

    def fit(self, train: ExecutionDataset) -> "DirectMLBaseline":
        F = self._features(train.X, train.nprocs)
        if self.standardize:
            self.scaler_ = StandardScaler().fit(F)
            F = self.scaler_.transform(F)
        y = np.log(train.runtime) if self.log_target else train.runtime
        self.model.fit(F, y)
        self.fitted_ = True
        return self

    def predict(self, X: np.ndarray, nprocs: np.ndarray | int) -> np.ndarray:
        if not hasattr(self, "fitted_"):
            raise RuntimeError("Baseline is not fitted.")
        X = np.asarray(X, dtype=np.float64)
        if np.isscalar(nprocs):
            nprocs = np.full(X.shape[0], nprocs)
        F = self._features(X, np.asarray(nprocs))
        if self.standardize:
            F = self.scaler_.transform(F)
        pred = self.model.predict(F)
        return np.exp(pred) if self.log_target else np.maximum(pred, 1e-12)

    def predict_dataset(self, dataset: ExecutionDataset) -> np.ndarray:
        return self.predict(dataset.X, dataset.nprocs)


# ---------------------------------------------------------------------------
# Named baseline registry (Table 2)
# ---------------------------------------------------------------------------


def _rf(seed: int) -> DirectMLBaseline:
    return DirectMLBaseline(
        RandomForestRegressor(n_estimators=100, random_state=seed),
        standardize=False,
    )


def _gbdt(seed: int) -> DirectMLBaseline:
    return DirectMLBaseline(
        GradientBoostingRegressor(n_estimators=200, max_depth=3, random_state=seed),
        standardize=False,
    )


def _lasso(seed: int) -> DirectMLBaseline:
    return DirectMLBaseline(LassoCV(cv=5, random_state=seed))


def _ridge(seed: int) -> DirectMLBaseline:
    return DirectMLBaseline(RidgeCV())


def _knn(seed: int) -> DirectMLBaseline:
    return DirectMLBaseline(KNeighborsRegressor(n_neighbors=5, weights="distance"))


def _svr(seed: int) -> DirectMLBaseline:
    # Kernel ridge with RBF kernel is the closed-form stand-in for
    # epsilon-SVR (see DESIGN.md substitutions).
    return DirectMLBaseline(KernelRidge(alpha=1e-2, kernel="rbf", gamma="scale"))


def _mlp(seed: int) -> DirectMLBaseline:
    return DirectMLBaseline(
        MLPRegressor(
            hidden_layer_sizes=(64, 64),
            max_iter=200,
            early_stopping=True,
            random_state=seed,
        )
    )


class EnsembleOfBaselines:
    """Geometric-mean ensemble of heterogeneous direct baselines.

    Averages member predictions in log space — the natural combination
    for multiplicative targets — so one member's blowup at large p is
    damped rather than dominating.  The strongest "existing ML methods"
    composite we could construct, added as an extension baseline.
    """

    def __init__(self, members: list[DirectMLBaseline]) -> None:
        if not members:
            raise ValueError("Ensemble needs at least one member.")
        self.members = members

    def fit(self, train: ExecutionDataset) -> "EnsembleOfBaselines":
        for m in self.members:
            m.fit(train)
        self.fitted_ = True
        return self

    def predict(self, X: np.ndarray, nprocs: np.ndarray | int) -> np.ndarray:
        if not hasattr(self, "fitted_"):
            raise RuntimeError("Baseline is not fitted.")
        logs = np.mean(
            [np.log(np.maximum(m.predict(X, nprocs), 1e-12))
             for m in self.members],
            axis=0,
        )
        return np.exp(logs)

    def predict_dataset(self, dataset: ExecutionDataset) -> np.ndarray:
        return self.predict(dataset.X, dataset.nprocs)


def _powerlaw(seed: int) -> DirectMLBaseline:
    # Global multi-parameter power law fitted by OLS in log-log space:
    # log t = c + sum_d a_d log x_d + b log p.  The strongest classical
    # analytic competitor — it extrapolates in p along a power law.
    from ..ml.linear.ols import LinearRegression

    return DirectMLBaseline(
        LinearRegression(), log_x_features=True, standardize=False
    )


def _ensemble(seed: int) -> EnsembleOfBaselines:
    return EnsembleOfBaselines([_mlp(seed), _lasso(seed), _rf(seed)])


#: name -> factory(seed) for every Table-2 baseline.
BASELINE_FACTORIES: dict[str, Callable[[int], DirectMLBaseline]] = {
    "direct-rf": _rf,
    "direct-gbdt": _gbdt,
    "direct-lasso": _lasso,
    "direct-ridge": _ridge,
    "direct-knn": _knn,
    "direct-svr": _svr,
    "direct-mlp": _mlp,
    "direct-ensemble": _ensemble,
    "direct-powerlaw": _powerlaw,
}


def make_baseline(name: str, seed: int = 0) -> DirectMLBaseline:
    """Instantiate a named baseline."""
    try:
        factory = BASELINE_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"Unknown baseline {name!r}; available: {sorted(BASELINE_FACTORIES)}"
        ) from None
    return factory(seed)
