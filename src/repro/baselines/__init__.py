"""Comparison methods: direct-ML extrapolation, per-configuration curve
fitting, and analytic speedup laws."""

from .analytic import (
    AmdahlModel,
    UniversalScalabilityModel,
    fit_amdahl,
    fit_usl,
)
from .curve_fit import (
    CurveFitBaseline,
    PerformanceModel,
    fit_performance_model,
)
from .direct_ml import (
    BASELINE_FACTORIES,
    DirectMLBaseline,
    EnsembleOfBaselines,
    make_baseline,
)

__all__ = [
    "AmdahlModel",
    "UniversalScalabilityModel",
    "fit_amdahl",
    "fit_usl",
    "CurveFitBaseline",
    "PerformanceModel",
    "fit_performance_model",
    "BASELINE_FACTORIES",
    "DirectMLBaseline",
    "EnsembleOfBaselines",
    "make_baseline",
]
