"""Analytic speedup-law baselines (Amdahl / Gustafson / universal
scalability law).

These single-configuration laws are fitted to measured small-scale
runtimes and extrapolated.  They are weaker than the Extra-P-style
hypothesis search (fixed functional form) but standard points of
comparison in the scalability-modeling literature and cheap sanity
anchors in the extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import minimize_scalar

__all__ = ["AmdahlModel", "UniversalScalabilityModel", "fit_amdahl", "fit_usl"]


@dataclass(frozen=True)
class AmdahlModel:
    """t(p) = t1 * (serial + (1 - serial) / p)."""

    t1: float
    serial_fraction: float

    def __call__(self, p: np.ndarray | float) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return self.t1 * (self.serial_fraction + (1.0 - self.serial_fraction) / p)


@dataclass(frozen=True)
class UniversalScalabilityModel:
    """Gunther's USL: speedup(p) = p / (1 + sigma (p-1) + kappa p (p-1)).

    ``t(p) = t1 / speedup(p)``; the kappa term models coherency costs
    that make runtime *increase* at large p.
    """

    t1: float
    sigma: float
    kappa: float

    def speedup(self, p: np.ndarray | float) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return p / (1.0 + self.sigma * (p - 1.0) + self.kappa * p * (p - 1.0))

    def __call__(self, p: np.ndarray | float) -> np.ndarray:
        return self.t1 / np.maximum(self.speedup(p), 1e-12)


def fit_amdahl(scales: Sequence[int], runtimes: Sequence[float]) -> AmdahlModel:
    """Least-squares Amdahl fit in relative-error metric.

    Uses the smallest measured scale to anchor t1 and a 1-D search over
    the serial fraction.
    """
    p = np.asarray(scales, dtype=np.float64)
    t = np.asarray(runtimes, dtype=np.float64)
    if len(p) < 2:
        raise ValueError("Need at least 2 scales.")
    if np.any(t <= 0) or np.any(p < 1):
        raise ValueError("Invalid scales or runtimes.")
    p0, t0 = p[0], t[0]

    def loss(serial: float) -> float:
        # t1 chosen in closed form given serial, anchored on all points.
        shape = serial + (1.0 - serial) / p
        shape0 = serial + (1.0 - serial) / p0
        t1 = t0 / shape0
        pred = t1 * shape
        return float(np.sum(np.log(pred / t) ** 2))

    res = minimize_scalar(loss, bounds=(0.0, 1.0), method="bounded")
    serial = float(res.x)
    t1 = t0 / (serial + (1.0 - serial) / p0)
    return AmdahlModel(t1=t1, serial_fraction=serial)


def fit_usl(
    scales: Sequence[int], runtimes: Sequence[float]
) -> UniversalScalabilityModel:
    """Grid + refinement fit of the USL in relative-error metric."""
    p = np.asarray(scales, dtype=np.float64)
    t = np.asarray(runtimes, dtype=np.float64)
    if len(p) < 3:
        raise ValueError("Need at least 3 scales.")
    if np.any(t <= 0) or np.any(p < 1):
        raise ValueError("Invalid scales or runtimes.")

    def loss(sigma: float, kappa: float) -> tuple[float, float]:
        denom = 1.0 + sigma * (p - 1.0) + kappa * p * (p - 1.0)
        shape = denom / p  # t(p)/t1
        # Closed-form t1 minimizing squared log error.
        t1 = float(np.exp(np.mean(np.log(t) - np.log(shape))))
        pred = t1 * shape
        return float(np.sum(np.log(pred / t) ** 2)), t1

    best = (np.inf, 0.0, 0.0, float(t[0] * p[0]))
    sigmas = np.concatenate([[0.0], np.geomspace(1e-5, 0.5, 24)])
    kappas = np.concatenate([[0.0], np.geomspace(1e-8, 1e-2, 24)])
    for s in sigmas:
        for k in kappas:
            err, t1 = loss(s, k)
            if err < best[0]:
                best = (err, float(s), float(k), t1)
    _, sigma, kappa, t1 = best
    return UniversalScalabilityModel(t1=t1, sigma=sigma, kappa=kappa)
