"""Deterministic filesystem fault injection.

:class:`ChaosFS` is a drop-in :class:`~repro.store.atomic.FilesystemBackend`
that every durable writer in the library already routes through.  It
can, from one integer seed and a scripted schedule:

* **crash** at any named crashpoint (``store.manifest:before-rename``,
  ``registry.register:after-rename``, ...) by raising
  :class:`ChaosCrash` — a ``BaseException`` subclass, so library
  ``except Exception``/``except OSError`` handlers cannot swallow the
  simulated process death;
* **tear writes**: a crash scheduled at a write step leaves a seeded
  random *prefix* of the payload on disk — exactly what a power cut
  mid-``write(2)`` leaves;
* **fail operations** with real errnos (ENOSPC on write, EIO on read)
  a scripted number of times;
* **flip bits** on read, and (module function :func:`corrupt_file`)
  deterministically damage files on disk for recovery tests.

Every primitive the backend executes is recorded as an ordered *step*
``(index, step_id)``; a recording pass over a workload enumerates its
crash surface, and :func:`repro.chaos.harness.crash_sweep` then
re-runs the workload once per step with ``crash_at_step(i)`` armed.

After a crash the instance is *dead*: further filesystem calls raise
:class:`ChaosCrash` again, modelling code that (incorrectly) tries to
keep writing from an exception handler after the process was "killed".
"""

from __future__ import annotations

import errno as _errno
import fnmatch
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from ..log import get_logger
from ..store import atomic

__all__ = ["ChaosCrash", "ChaosFS", "corrupt_file"]

logger = get_logger("chaos.fs")


class ChaosCrash(BaseException):
    """Simulated process death at a crashpoint.

    Deliberately **not** an :class:`Exception`: recovery code under
    test must never be able to catch-and-continue past a kill, the way
    it couldn't catch ``SIGKILL``.
    """

    def __init__(self, step_id: str, step_index: int) -> None:
        super().__init__(f"chaos crash at step {step_index} ({step_id})")
        self.step_id = step_id
        self.step_index = step_index


class _FaultRule:
    """Inject an OSError into ops matching a glob pattern, N times."""

    def __init__(self, pattern: str, err: int, count: int) -> None:
        self.pattern = pattern
        self.err = err
        self.remaining = count

    def matches(self, step_id: str) -> bool:
        return self.remaining != 0 and fnmatch.fnmatch(step_id, self.pattern)

    def fire(self, step_id: str) -> None:
        if self.remaining > 0:
            self.remaining -= 1
        raise OSError(self.err, os.strerror(self.err), step_id)


class ChaosFS(atomic.FilesystemBackend):
    """Seeded fault-injecting filesystem backend (see module docstring).

    Step ids follow the protocol of :mod:`repro.store.atomic`:
    ``"<op>:before-write"`` / ``"<op>:write"`` (the data hits disk
    here) / ``"<op>:before-rename"`` / ``"<op>:rename"`` /
    ``"<op>:after-rename"`` / ``"<op>:read"``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)
        #: ordered (step_index, step_id) trace of every primitive run
        self.steps: list[tuple[int, str]] = []
        self.crashed: ChaosCrash | None = None
        self._crash_step: int | None = None
        self._crash_ids: dict[str, int] = {}
        self._faults: list[_FaultRule] = []
        self._flip_read_bits = False

    # -- scheduling --------------------------------------------------------

    def crash_at_step(self, index: int) -> "ChaosFS":
        """Arm a crash at the ``index``-th primitive step (as numbered
        by a previous recording pass)."""
        self._crash_step = int(index)
        return self

    def crash_at(self, step_id: str, occurrence: int = 1) -> "ChaosFS":
        """Arm a crash at the n-th occurrence of a step id (glob
        patterns allowed, e.g. ``"store.manifest:*-rename"``)."""
        self._crash_ids[step_id] = int(occurrence)
        return self

    def fail_op(
        self, pattern: str, err: int = _errno.ENOSPC, count: int = 1
    ) -> "ChaosFS":
        """Make ops matching ``pattern`` raise ``OSError(err)`` the
        next ``count`` times (``count=-1``: every time)."""
        self._faults.append(_FaultRule(pattern, err, count))
        return self

    def flip_read_bits(self, enable: bool = True) -> "ChaosFS":
        """Corrupt every subsequent :meth:`read_bytes` result by one
        deterministic bit flip (models silent media bit rot)."""
        self._flip_read_bits = enable
        return self

    # -- step accounting ---------------------------------------------------

    def _step(self, step_id: str) -> int:
        """Record one primitive step; fire any scheduled crash/fault."""
        if self.crashed is not None:
            # the process is "dead" — nothing runs after a kill
            raise self.crashed
        index = len(self.steps)
        self.steps.append((index, step_id))
        for rule in self._faults:
            if rule.matches(step_id):
                logger.debug("chaos: injecting errno %d at %s", rule.err, step_id)
                rule.fire(step_id)
        crash = self._crash_step == index
        if not crash:
            for pattern, occurrence in list(self._crash_ids.items()):
                if fnmatch.fnmatch(step_id, pattern):
                    occurrence -= 1
                    self._crash_ids[pattern] = occurrence
                    if occurrence <= 0:
                        del self._crash_ids[pattern]
                        crash = True
                    break
        if crash:
            self.crashed = ChaosCrash(step_id, index)
            logger.debug("chaos: crash at step %d (%s)", index, step_id)
            raise self.crashed
        return index

    # -- FilesystemBackend primitives --------------------------------------

    def checkpoint(self, step: str) -> None:
        self._step(step)

    def write_bytes(self, path: Path, data: bytes, op: str = "file") -> None:
        step_id = f"{op}:write"
        try:
            self._step(step_id)
        except ChaosCrash:
            # torn write: a seeded prefix of the payload is on disk
            n = int(self.rng.integers(0, len(data) + 1)) if data else 0
            with open(path, "wb") as fh:
                fh.write(data[:n])
                fh.flush()
                os.fsync(fh.fileno())
            logger.debug(
                "chaos: torn write of %s (%d/%d bytes)", path, n, len(data)
            )
            raise
        super().write_bytes(path, data, op=op)

    def replace(self, src: Path, dst: Path, op: str = "file") -> None:
        self._step(f"{op}:rename")
        super().replace(src, dst, op=op)

    def read_bytes(self, path: Path, op: str = "file") -> bytes:
        self._step(f"{op}:read-bytes")
        data = super().read_bytes(path, op=op)
        if self._flip_read_bits and data:
            pos = int(self.rng.integers(0, len(data)))
            bit = 1 << int(self.rng.integers(0, 8))
            data = data[:pos] + bytes([data[pos] ^ bit]) + data[pos + 1:]
        return data

    # -- installation ------------------------------------------------------

    @contextmanager
    def install(self) -> Iterator["ChaosFS"]:
        """Swap this backend in for the scope of a ``with`` block."""
        previous = atomic.set_backend(self)
        try:
            yield self
        finally:
            atomic.set_backend(previous)

    # -- reporting ---------------------------------------------------------

    def step_ids(self) -> list[str]:
        return [step_id for _, step_id in self.steps]

    def describe(self) -> str:
        lines = [f"ChaosFS: {len(self.steps)} step(s) recorded"]
        lines += [f"  {i:4d}  {step_id}" for i, step_id in self.steps]
        if self.crashed is not None:
            lines.append(f"  crashed: {self.crashed}")
        return "\n".join(lines)


def corrupt_file(
    path: str | Path,
    mode: str = "bitflip",
    amount: int = 1,
    seed: int = 0,
) -> dict[str, Any]:
    """Deterministically damage one on-disk file (for recovery tests).

    ``mode``: ``"bitflip"`` flips ``amount`` seeded random bits in
    place; ``"truncate"`` drops the last ``amount`` bytes (min 1 left
    removed even for tiny files); ``"garbage"`` overwrites the whole
    file with ``amount`` seeded random bytes.  Returns a description
    of what was done.
    """
    path = Path(path)
    rng = np.random.default_rng(seed)
    data = bytearray(path.read_bytes())
    before = len(data)
    if mode == "bitflip":
        if not data:
            raise ValueError(f"{path} is empty; nothing to bit-flip.")
        for _ in range(int(amount)):
            pos = int(rng.integers(0, len(data)))
            data[pos] ^= 1 << int(rng.integers(0, 8))
        path.write_bytes(bytes(data))
    elif mode == "truncate":
        keep = max(0, len(data) - max(1, int(amount)))
        path.write_bytes(bytes(data[:keep]))
    elif mode == "garbage":
        path.write_bytes(rng.integers(0, 256, size=int(amount), dtype=np.uint8).tobytes())
    else:
        raise ValueError(
            f"Unknown corruption mode {mode!r}; use bitflip/truncate/garbage."
        )
    return {
        "path": str(path),
        "mode": mode,
        "amount": int(amount),
        "bytes_before": before,
        "bytes_after": path.stat().st_size,
    }
