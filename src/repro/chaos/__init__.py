"""Deterministic crash-consistency chaos harness.

``repro.chaos`` answers one question about every durable write in the
system: *if the process dies here, does the data survive?*  It wraps
the filesystem boundary all writers already share
(:mod:`repro.store.atomic`) with a seeded fault injector and sweeps
scripted crash schedules over the durability-critical paths — store
shard appends, manifest updates, registry ``register``, campaign
checkpoints — asserting the recovered state is always either the
complete old state or the complete new state, never in-between.

* :class:`ChaosFS` — fault-injecting backend: scripted crashes at
  named crashpoints, torn writes, ENOSPC/EIO, bit flips on read.
* :class:`ChaosCrash` — the simulated kill (a ``BaseException``; the
  code under test cannot catch it).
* :func:`crash_sweep` — record a workload's crash surface, then crash
  it at every step and run a recovery check per case.
* :func:`corrupt_file` — deterministic on-disk damage for
  ``fsck``/quarantine tests.

See ``docs/chaos.md`` for the schedule format and fsck semantics.
"""

from .fs import ChaosCrash, ChaosFS, corrupt_file
from .harness import CrashOutcome, CrashSweepReport, crash_sweep

__all__ = [
    "ChaosFS",
    "ChaosCrash",
    "corrupt_file",
    "crash_sweep",
    "CrashOutcome",
    "CrashSweepReport",
]
