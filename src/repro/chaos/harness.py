"""Record-then-sweep crash schedules over durable workloads.

The harness turns the *recover-to-old-or-new, never in-between*
invariant into an exhaustive, deterministic test:

1. **Record** — run the workload once under a :class:`ChaosFS` with no
   crash armed, collecting the ordered list of filesystem steps it
   executes (its *crash surface*).
2. **Sweep** — for each step ``i``, re-run setup + workload in a fresh
   directory with ``crash_at_step(i)`` armed.  The workload dies with
   :class:`~repro.chaos.fs.ChaosCrash` at that exact primitive.
3. **Check** — with the real filesystem restored (the "reboot"), call
   the caller's ``check(root)`` — typically reopen + ``fsck()`` +
   assert the state equals either the pre-workload or the
   post-workload state.

Every case is deterministic: same seed, same workload, same crash
schedule, same bytes.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..log import get_logger
from .fs import ChaosCrash, ChaosFS

__all__ = ["CrashOutcome", "CrashSweepReport", "crash_sweep"]

logger = get_logger("chaos.harness")


@dataclass
class CrashOutcome:
    """One swept crashpoint: where the workload died and what the
    post-reboot check concluded."""

    step_index: int
    step_id: str
    crashed: bool
    ok: bool
    detail: str = ""


@dataclass
class CrashSweepReport:
    """Aggregate of a full sweep (one outcome per recorded step)."""

    steps_recorded: int = 0
    step_ids: list[str] = field(default_factory=list)
    outcomes: list[CrashOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[CrashOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return self.steps_recorded > 0 and not self.failures

    def summary(self) -> str:
        lines = [
            f"crash sweep: {len(self.outcomes)}/{self.steps_recorded} "
            f"crashpoints checked, {len(self.failures)} failure(s)"
        ]
        for o in self.failures:
            lines.append(
                f"  FAIL step {o.step_index} ({o.step_id}): {o.detail}"
            )
        return "\n".join(lines)


def crash_sweep(
    setup: Callable[[Path], Any],
    workload: Callable[[Path, Any], Any],
    check: Callable[[Path, Any], Any],
    base_dir: str | Path,
    seed: int = 0,
    step_filter: Callable[[str], bool] | None = None,
) -> CrashSweepReport:
    """Crash a workload at every filesystem step it performs and check
    recovery after each (see module docstring).

    ``setup(root)`` builds the pre-workload state and returns an
    opaque context; ``workload(root, ctx)`` performs the durable
    operation under test; ``check(root, ctx)`` runs after the
    simulated reboot and must raise (e.g. ``assert``) when the
    recovered state is neither old nor new.  ``step_filter`` narrows
    the sweep to matching step ids.  Each case gets a fresh directory
    under ``base_dir``.
    """
    base_dir = Path(base_dir)
    base_dir.mkdir(parents=True, exist_ok=True)

    def _case_dir(tag: str) -> Path:
        root = base_dir / tag
        if root.exists():
            shutil.rmtree(root)
        root.mkdir()
        return root

    # pass 0: record the crash surface (no crash armed)
    record_root = _case_dir("record")
    ctx = setup(record_root)
    recorder = ChaosFS(seed=seed)
    with recorder.install():
        workload(record_root, ctx)
    check(record_root, ctx)  # the uninterrupted run must itself pass
    report = CrashSweepReport(
        steps_recorded=len(recorder.steps),
        step_ids=recorder.step_ids(),
    )
    logger.info(
        "chaos sweep: recorded %d step(s): %s",
        report.steps_recorded, ", ".join(report.step_ids),
    )

    for index, step_id in recorder.steps:
        if step_filter is not None and not step_filter(step_id):
            continue
        root = _case_dir(f"case-{index:03d}")
        ctx = setup(root)
        fs = ChaosFS(seed=seed).crash_at_step(index)
        crashed = False
        try:
            with fs.install():
                workload(root, ctx)
        except ChaosCrash:
            crashed = True
        # reboot: the real filesystem is back; recovery runs clean
        try:
            check(root, ctx)
            outcome = CrashOutcome(index, step_id, crashed, ok=True)
        except BaseException as exc:  # asserts, ReproError, anything
            outcome = CrashOutcome(
                index, step_id, crashed, ok=False,
                detail=f"{type(exc).__name__}: {exc}",
            )
            logger.warning(
                "chaos sweep: step %d (%s) failed recovery: %s",
                index, step_id, outcome.detail,
            )
        report.outcomes.append(outcome)
    return report
