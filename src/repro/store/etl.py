"""Streaming ETL: extractor chunks → validate/sanitize → shard appends.

:class:`IngestPipeline` is the write path of the history data plane.  It
pulls bounded chunks from an extractor (see :mod:`repro.store.extract`),
coerces them into :class:`~repro.data.ExecutionDataset` chunks (rejecting
rows that cannot even be represented — non-numeric fields, nonpositive
runtimes), sanitizes each chunk through :mod:`repro.robustness`, and
appends the survivors to a :class:`~repro.store.HistoryStore`.  Peak
memory is bounded by the chunk size regardless of source size.

Chunking-invariance contract: by default only *row-local* sanitize rules
run (:data:`~repro.robustness.ROW_LOCAL_RULES`, with the censoring rule
active only under an explicit ``censor_limit``), so the surviving rows —
and therefore the store fingerprints — are identical for any chunk size.
Group-based rules (duplicates, spikes) need the whole history in view;
run them post-hoc on ``store.to_dataset()`` instead, or opt in
explicitly via ``rules=`` accepting chunk-dependent results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..data.dataset import ExecutionDataset
from ..errors import ConfigurationError, DatasetFormatError, DataValidationError
from ..log import get_logger
from ..robustness.sanitize import ROW_LOCAL_RULES, SanitizeReport, sanitize_dataset
from .store import DEFAULT_CHUNK_ROWS, HistoryStore

__all__ = ["IngestPipeline", "IngestReport"]

logger = get_logger("store.etl")


@dataclass
class IngestReport:
    """Aggregate outcome of one :meth:`IngestPipeline.run`."""

    store_path: str
    rows_read: int = 0
    rows_rejected: int = 0
    rows_appended: int = 0
    chunks: int = 0
    shards_written: int = 0
    sanitize: SanitizeReport | None = None
    fingerprint: str | None = None
    rejections: dict[str, int] = field(default_factory=dict)

    @property
    def rows_dropped(self) -> int:
        return self.sanitize.rows_dropped if self.sanitize else 0

    @property
    def rows_imputed(self) -> int:
        return self.sanitize.rows_imputed if self.sanitize else 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "store_path": self.store_path,
            "rows_read": self.rows_read,
            "rows_rejected": self.rows_rejected,
            "rows_appended": self.rows_appended,
            "chunks": self.chunks,
            "shards_written": self.shards_written,
            "sanitize": self.sanitize.to_dict() if self.sanitize else None,
            "fingerprint": self.fingerprint,
            "rejections": dict(self.rejections),
        }

    def summary(self) -> str:
        lines = [
            f"ingest: {self.rows_read} rows read -> "
            f"{self.rows_appended} appended "
            f"({self.shards_written} shard(s), {self.chunks} chunk(s))"
        ]
        if self.rows_rejected:
            per = ", ".join(f"{k}={n}" for k, n in self.rejections.items())
            lines.append(f"  rejected {self.rows_rejected} malformed rows ({per})")
        if self.sanitize and (self.rows_dropped or self.rows_imputed):
            lines.append("  " + self.sanitize.summary())
        if self.fingerprint:
            lines.append(f"  store fingerprint: {self.fingerprint}")
        return "\n".join(lines)


class IngestPipeline:
    """Chunked extract → transform → sanitize → append pipeline.

    Parameters
    ----------
    store:
        An open :class:`HistoryStore`, or a directory path.  A path that
        already holds a store is opened; otherwise the store is created
        lazily from the first chunk (or from explicit ``app_name`` /
        ``param_names``).
    chunk_rows:
        Rows pulled from the extractor per chunk; bounds peak memory.
    sanitize:
        Run per-chunk sanitization (default on).
    censor_limit:
        Known job wall-clock limit; enables the (row-local) censoring
        rule.
    repair:
        Sanitize repair mode, ``"drop"`` or ``"impute"``.
    rules:
        Explicit sanitize rule subset.  Default: the row-local rules,
        which keep the stored rows independent of chunk boundaries.
        Passing group-based rules here makes results chunk-dependent —
        only do so when each chunk is a complete repeat group.
    """

    def __init__(
        self,
        store: HistoryStore | str | Path,
        app_name: str | None = None,
        param_names: Sequence[str] | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        sanitize: bool = True,
        censor_limit: float | None = None,
        repair: str = "drop",
        rules: Sequence[str] | None = None,
    ) -> None:
        if chunk_rows < 1:
            raise ConfigurationError("chunk_rows must be >= 1.")
        if isinstance(store, HistoryStore):
            self._store: HistoryStore | None = store
            self._store_path = store.root
        else:
            path = Path(store)
            self._store = HistoryStore.open(path) if HistoryStore.is_store(path) else None
            self._store_path = path
        self._app_name = app_name
        self._param_names = tuple(param_names) if param_names is not None else None
        self.chunk_rows = int(chunk_rows)
        self.sanitize = bool(sanitize)
        self.censor_limit = censor_limit
        self.repair = repair
        if rules is not None:
            self._rules: tuple[str, ...] = tuple(rules)
        elif censor_limit is not None:
            self._rules = ROW_LOCAL_RULES
        else:
            # Without a known limit the censoring rule would *infer* a
            # ceiling from each chunk's maximum — chunk-dependent, so off.
            self._rules = tuple(r for r in ROW_LOCAL_RULES if r != "censored_runtime")

    @property
    def store(self) -> HistoryStore | None:
        """The target store (``None`` until the first chunk creates it)."""
        return self._store

    # -- pipeline ----------------------------------------------------------

    def run(self, extractor, source: str | None = None) -> IngestReport:
        """Stream ``extractor`` into the store and return the report.

        Shard fingerprint refreshes are deferred until the end of the
        run, so ingest cost is linear in source size with one final
        hashing pass.
        """
        report = IngestReport(store_path=str(self._store_path))
        appended = False
        for chunk in extractor.chunks(self.chunk_rows):
            report.chunks += 1
            report.rows_read += len(chunk)
            dataset = self._transform(chunk, report)
            if dataset is None:
                continue
            sanitize_payload = None
            if self.sanitize:
                dataset, chunk_report = sanitize_dataset(
                    dataset,
                    censor_limit=self.censor_limit,
                    repair=self.repair,
                    rules=self._rules,
                )
                sanitize_payload = chunk_report.to_dict()
                report.sanitize = (
                    chunk_report
                    if report.sanitize is None
                    else report.sanitize.merge(chunk_report)
                )
                if len(dataset) == 0:
                    continue
            entry = self._ensure_store(dataset).append(
                dataset,
                source=source,
                sanitize=sanitize_payload,
                defer_fingerprints=True,
            )
            if entry is not None:
                appended = True
                report.shards_written += 1
                report.rows_appended += entry["rows"]
        if self._store is None:
            raise DataValidationError(
                f"Ingest produced no usable rows ({report.rows_read} read, "
                f"{report.rows_rejected} rejected); store not created."
            )
        if appended:
            report.fingerprint = self._store.refresh_fingerprints()
        else:
            report.fingerprint = self._store.fingerprint
        logger.info("%s", report.summary())
        return report

    # -- transform ---------------------------------------------------------

    def _ensure_store(self, dataset: ExecutionDataset) -> HistoryStore:
        if self._store is None:
            self._store = HistoryStore.create(
                self._store_path, dataset.app_name, dataset.param_names
            )
        return self._store

    def _target_schema(
        self, first: dict[str, Any]
    ) -> tuple[str | None, tuple[str, ...]]:
        """Resolve (app_name, param_names) from, in priority order: the
        open store, explicit constructor args, the first record."""
        if self._store is not None:
            return self._store.app_name, self._store.param_names
        app = self._app_name
        if app is None:
            app = first.get("app_name")
        params = self._param_names
        if params is None:
            params = tuple(sorted(first["params"]))
        return app, params

    def _transform(
        self, chunk: list[dict[str, Any]], report: IngestReport
    ) -> ExecutionDataset | None:
        """Coerce one raw chunk into an ExecutionDataset, rejecting rows
        that cannot be represented and counting them per reason."""
        if not chunk:
            return None
        app_name, param_names = self._target_schema(chunk[0])
        n = len(chunk)
        X = np.empty((n, len(param_names)), dtype=np.float64)
        nprocs = np.empty(n, dtype=np.int64)
        runtime = np.empty(n, dtype=np.float64)
        model_runtime = np.empty(n, dtype=np.float64)
        rep = np.empty(n, dtype=np.int64)
        wait_seconds = np.empty(n, dtype=np.float64)
        keep = np.zeros(n, dtype=bool)

        def reject(reason: str) -> None:
            report.rows_rejected += 1
            report.rejections[reason] = report.rejections.get(reason, 0) + 1

        for i, rec in enumerate(chunk):
            origin = rec.get("origin", "<record>")
            rec_app = rec.get("app_name")
            if rec_app is not None and app_name is not None and str(rec_app) != app_name:
                raise DataValidationError(
                    f"{origin}: record belongs to application {rec_app!r} "
                    f"but the store holds {app_name!r}."
                )
            if app_name is None:
                app_name = str(rec_app) if rec_app is not None else None
            params = rec["params"]
            if set(params) != set(param_names):
                raise DatasetFormatError(
                    f"{origin}: record parameters {sorted(params)} do not "
                    f"match the store schema {sorted(param_names)}."
                )
            try:
                row = [float(params[p]) for p in param_names]
            except (TypeError, ValueError):
                reject("bad_param_value")
                continue
            try:
                np_ = int(float(rec["nprocs"]))
            except (TypeError, ValueError):
                reject("bad_nprocs")
                continue
            if np_ < 1:
                reject("bad_nprocs")
                continue
            raw_rt = rec.get("runtime")
            try:
                rt = math.nan if raw_rt is None else float(raw_rt)
            except (TypeError, ValueError):
                reject("bad_runtime")
                continue
            if math.isfinite(rt) and rt <= 0:
                reject("nonpositive_runtime")
                continue
            raw_mrt = rec.get("model_runtime")
            try:
                mrt = rt if raw_mrt is None else float(raw_mrt)
            except (TypeError, ValueError):
                reject("bad_model_runtime")
                continue
            raw_rep = rec.get("rep")
            try:
                rp = 0 if raw_rep is None else int(float(raw_rep))
            except (TypeError, ValueError):
                reject("bad_rep")
                continue
            raw_wait = rec.get("wait_seconds")
            try:
                wait = 0.0 if raw_wait is None else float(raw_wait)
            except (TypeError, ValueError):
                reject("bad_wait_seconds")
                continue
            if not math.isfinite(wait) or wait < 0:
                reject("bad_wait_seconds")
                continue
            X[i] = row
            nprocs[i] = np_
            runtime[i] = rt
            model_runtime[i] = mrt
            rep[i] = rp
            wait_seconds[i] = wait
            keep[i] = True

        if not keep.any():
            return None
        if app_name is None:
            raise DataValidationError(
                "Cannot determine the application name: records carry no "
                "app_name and none was configured (pass app_name= to "
                "IngestPipeline or create the store first)."
            )
        return ExecutionDataset(
            app_name=app_name,
            param_names=tuple(param_names),
            X=X[keep],
            nprocs=nprocs[keep],
            runtime=runtime[keep],
            model_runtime=model_runtime[keep],
            rep=rep[keep],
            wait_seconds=wait_seconds[keep],
        )
