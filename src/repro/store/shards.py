"""Columnar shard I/O.

A *shard* is one append's worth of history rows, stored as a directory
of fixed-width numpy column files::

    shards/shard-00000/
        X.npy             float64 (rows, n_params)
        nprocs.npy        int64   (rows,)
        runtime.npy       float64 (rows,)
        model_runtime.npy float64 (rows,)
        rep.npy           int64   (rows,)
        wait_seconds.npy  float64 (rows,)   [optional: absent pre-v2]

Columns are written atomically (fsynced temp directory +
``os.replace`` + parent-dir fsync via :mod:`repro.store.atomic`) and
read back memory-mapped, so consumers stream slices without ever
materializing a shard — the primitive the out-of-core history build is
made of.
"""

from __future__ import annotations

import io
import shutil
from pathlib import Path

import numpy as np

from ..data.dataset import ExecutionDataset
from ..errors import DatasetFormatError
from ..log import get_logger
from . import atomic
from .schema import COLUMNS, OPTIONAL_COLUMNS, column_dtype

__all__ = ["write_shard", "open_shard_column", "shard_nrows", "ShardReader"]

logger = get_logger("store.shards")


def write_shard(directory: Path, dataset: ExecutionDataset) -> Path:
    """Write ``dataset``'s columns to ``directory`` atomically.

    The columns are fsynced into a sibling temp directory and moved
    into place with :func:`repro.store.atomic.commit_dir`, so a crash
    mid-write never leaves a half-shard under the final name — at
    worst a ``.tmp-*`` orphan, which the next write (or ``fsck``)
    sweeps.
    """
    directory = Path(directory)
    tmp = directory.parent / f".tmp-{directory.name}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    for name, dtype, _ in COLUMNS:
        arr = np.ascontiguousarray(getattr(dataset, name), dtype=dtype)
        buf = io.BytesIO()
        np.save(buf, arr, allow_pickle=False)
        atomic.write_file_bytes(
            tmp / f"{name}.npy", buf.getvalue(), op="store.shard.column"
        )
    atomic.commit_dir(tmp, directory, op="store.shard")
    logger.debug("wrote shard %s (%d rows)", directory.name, len(dataset))
    return directory


def open_shard_column(directory: Path, name: str) -> np.ndarray:
    """Memory-map one column of a shard (read-only, no copy).

    Optional columns absent from a shard (written by an older build,
    before the column existed) come back as a zeros array of the
    shard's row count instead of raising.
    """
    path = Path(directory) / f"{name}.npy"
    if not path.is_file():
        if name in OPTIONAL_COLUMNS:
            return np.zeros(shard_nrows(directory), dtype=column_dtype(name))
        raise DatasetFormatError(
            f"Shard {directory} is missing column file {name}.npy."
        )
    try:
        arr = np.load(path, mmap_mode="r", allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise DatasetFormatError(
            f"{path}: unreadable shard column: {exc}"
        ) from exc
    if arr.dtype != column_dtype(name):
        raise DatasetFormatError(
            f"{path}: column dtype {arr.dtype} does not match the "
            f"schema dtype {column_dtype(name)}."
        )
    return arr


def shard_nrows(directory: Path) -> int:
    """Row count of a shard (from its ``nprocs`` column header)."""
    return int(open_shard_column(directory, "nprocs").shape[0])


class ShardReader:
    """Lazy, memory-mapped view over one shard's columns."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self._columns: dict[str, np.ndarray] = {}

    def column(self, name: str) -> np.ndarray:
        """The named column, memory-mapped and cached."""
        if name not in self._columns:
            self._columns[name] = open_shard_column(self.directory, name)
        return self._columns[name]

    @property
    def n_rows(self) -> int:
        return int(self.column("nprocs").shape[0])

    def scale_mask(self, scales) -> np.ndarray:
        """Boolean mask of rows whose nprocs is in ``scales``."""
        return np.isin(self.column("nprocs"), np.asarray(list(scales)))
