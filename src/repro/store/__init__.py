"""Trace-scale history data plane.

The :mod:`repro.store` subsystem moves history handling from "one JSON
file in memory" to an out-of-core data plane sized for real trace
archives:

* :class:`HistoryStore` — a columnar on-disk shard store (one numpy
  file per column per shard) with a manifest carrying schema version,
  row counts, per-shard SHA-256 fingerprints, and sanitize provenance.
  Reads are memory-mapped; ``to_dataset(scales=..., columns=...)``
  materializes only the slice a fit needs, bit-identical to the
  in-memory build of the same rows.
* :class:`IngestPipeline` — streaming ETL with pluggable extractors
  (:class:`JSONLExtractor`, :class:`CSVExtractor`,
  :class:`DatasetExtractor`, :class:`RecordStreamExtractor`):
  extract → transform → per-chunk validate/sanitize → append, with
  peak memory bounded by the chunk size.
* Chunking-invariant fingerprints — the store hash and the per-scale
  hashes depend only on row content and order, never on chunk
  boundaries; warm-start refits
  (:meth:`repro.core.TwoLevelModel.fit` with ``warm_start_from=``) key
  on the per-scale hashes to skip refitting unchanged scales.

Parquet export (:meth:`HistoryStore.export_parquet`) activates only
when ``pyarrow`` is importable; nothing here requires it.

Durability: every writer in the package goes through
:mod:`repro.store.atomic` (fsynced tmp + rename + parent-dir fsync,
re-exported here as :func:`atomic_replace` and friends), and
:meth:`HistoryStore.fsck` classifies/quarantines damaged shards so a
corrupted store reopens with its surviving rows.
"""

from .atomic import (
    FilesystemBackend,
    atomic_replace,
    atomic_replace_bytes,
    commit_dir,
    get_backend,
    set_backend,
    write_file_bytes,
)
from .etl import IngestPipeline, IngestReport
from .extract import (
    CSVExtractor,
    DatasetExtractor,
    JSONLExtractor,
    RecordStreamExtractor,
    extractor_for_path,
    normalize_record,
)
from .schema import COLUMN_NAMES, COLUMNS, STORE_FORMAT, STORE_FORMAT_VERSION
from .shards import ShardReader, open_shard_column, shard_nrows, write_shard
from .store import (
    DEFAULT_CHUNK_ROWS,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    FsckReport,
    HistoryStore,
)

__all__ = [
    "HistoryStore",
    "FsckReport",
    "FilesystemBackend",
    "get_backend",
    "set_backend",
    "atomic_replace",
    "atomic_replace_bytes",
    "write_file_bytes",
    "commit_dir",
    "QUARANTINE_DIR",
    "IngestPipeline",
    "IngestReport",
    "JSONLExtractor",
    "CSVExtractor",
    "DatasetExtractor",
    "RecordStreamExtractor",
    "extractor_for_path",
    "normalize_record",
    "ShardReader",
    "write_shard",
    "open_shard_column",
    "shard_nrows",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "COLUMNS",
    "COLUMN_NAMES",
    "MANIFEST_NAME",
    "DEFAULT_CHUNK_ROWS",
]
