"""The columnar history store: manifest + shard directory.

Layout::

    store/
        manifest.json           # schema version, row counts, fingerprints
        shards/
            shard-00000/        # one append each (see repro.store.shards)
            shard-00001/
            ...

The manifest is the store's single source of truth: which shards exist
(orphan directories from a crashed append are ignored), how many rows
each holds, each shard's content fingerprint, the sanitize provenance of
the chunk it came from, and two *chunking-invariant* content hashes —
the whole-store ``dataset_fingerprint`` and one fingerprint per scale.
Chunking-invariant means: ingesting the same records through any chunk
sizes produces byte-identical fingerprints, because the hash streams
the store column-major in row order (see
:class:`~repro.data.io.FingerprintStream`).  The per-scale fingerprints
are what warm-start refits key on — a scale whose fingerprint is
unchanged still has exactly the data its interpolator was fitted on.

Manifest updates are atomic and durable (fsynced temp file +
``os.replace`` + parent-dir fsync via :mod:`repro.store.atomic`) and
shard writes land before the manifest references them, so a reader
always sees a consistent store and a crash loses at most the append in
flight.  :meth:`HistoryStore.fsck` repairs the cases atomicity alone
cannot: shards damaged after commit (bit rot, truncation) are
classified and quarantined, orphaned temp/shard directories from a
crash are swept, and the manifest is rewritten to cover exactly the
surviving rows.
"""

from __future__ import annotations

import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from ..data.dataset import ExecutionDataset
from ..data.io import FINGERPRINT_COLUMNS, FingerprintStream, save_dataset
from ..errors import ConfigurationError, DataValidationError, DatasetFormatError
from ..log import get_logger
from . import atomic
from .schema import (
    COLUMN_NAMES,
    OPTIONAL_COLUMNS,
    STORE_FORMAT,
    STORE_FORMAT_VERSION,
    column_dtype,
)
from .shards import ShardReader, write_shard

__all__ = [
    "HistoryStore",
    "FsckReport",
    "MANIFEST_NAME",
    "QUARANTINE_DIR",
    "DEFAULT_CHUNK_ROWS",
]

logger = get_logger("store.store")

MANIFEST_NAME = "manifest.json"
SHARDS_DIR = "shards"
QUARANTINE_DIR = "quarantine"

#: Row-chunk size used when streaming shards (hashing, export, chunked
#: reads).  Bounds peak memory at roughly ``chunk * row_width`` bytes.
DEFAULT_CHUNK_ROWS = 65536


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}"


@dataclass
class FsckReport:
    """What :meth:`HistoryStore.fsck` found (and, with ``repair=True``,
    fixed).  ``damaged`` maps shard name -> classification, one of
    ``missing-shard``, ``missing-column``, ``unreadable-column``,
    ``row-mismatch``, or ``hash-mismatch``; orphans are directories no
    manifest entry references."""

    root: str
    shards_checked: int = 0
    rows_before: int = 0
    rows_retained: int = 0
    damaged: dict[str, str] = field(default_factory=dict)
    quarantined: list[str] = field(default_factory=list)
    orphans_removed: list[str] = field(default_factory=list)
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.damaged and not self.orphans_removed

    def to_dict(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "shards_checked": self.shards_checked,
            "rows_before": self.rows_before,
            "rows_retained": self.rows_retained,
            "damaged": dict(self.damaged),
            "quarantined": list(self.quarantined),
            "orphans_removed": list(self.orphans_removed),
            "repaired": self.repaired,
            "clean": self.clean,
        }

    def summary(self) -> str:
        if self.clean:
            return (
                f"fsck: clean ({self.shards_checked} shard(s), "
                f"{self.rows_retained} rows)"
            )
        parts = [
            f"fsck: {len(self.damaged)} damaged shard(s), "
            f"{len(self.orphans_removed)} orphan(s)"
        ]
        for name, kind in sorted(self.damaged.items()):
            parts.append(f"  {name}: {kind}")
        parts.append(
            f"  rows: {self.rows_before} -> {self.rows_retained} "
            f"({'repaired' if self.repaired else 'NOT repaired'})"
        )
        return "\n".join(parts)


class HistoryStore:
    """A trace-scale execution history on disk (see module docstring).

    Create one with :meth:`create`, reopen with :meth:`open`; both are
    cheap (only the manifest is read — shard columns are memory-mapped
    lazily).
    """

    def __init__(self, root: Path, manifest: dict[str, Any]) -> None:
        self.root = Path(root)
        self._manifest = manifest

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | Path,
        app_name: str,
        param_names: Sequence[str],
    ) -> "HistoryStore":
        """Initialize an empty store at ``root`` (refuses an existing one)."""
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            raise ConfigurationError(
                f"{root} already holds a history store; open() it instead."
            )
        root.mkdir(parents=True, exist_ok=True)
        (root / SHARDS_DIR).mkdir(exist_ok=True)
        manifest = {
            "format": STORE_FORMAT,
            "format_version": STORE_FORMAT_VERSION,
            "app_name": str(app_name),
            "param_names": [str(n) for n in param_names],
            "created_unix": time.time(),
            "n_rows": 0,
            "scales": [],
            "dataset_fingerprint": None,
            "scale_fingerprints": {},
            "fingerprints_stale": False,
            "shards": [],
        }
        store = cls(root, manifest)
        store._write_manifest()
        logger.info("created history store at %s (app=%s)", root, app_name)
        return store

    @classmethod
    def open(cls, root: str | Path) -> "HistoryStore":
        """Open an existing store, validating its manifest."""
        root = Path(root)
        path = root / MANIFEST_NAME
        if not path.is_file():
            raise DatasetFormatError(
                f"{root} is not a history store (no {MANIFEST_NAME})."
            )
        try:
            manifest = json.loads(atomic.read_text(path, op="store.manifest"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DatasetFormatError(
                f"{path}: manifest is not readable JSON: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != STORE_FORMAT:
            raise DatasetFormatError(
                f"{path}: not a history-store manifest "
                f"(format={manifest.get('format') if isinstance(manifest, dict) else None!r})."
            )
        try:
            version = int(manifest["format_version"])
        except (KeyError, TypeError, ValueError):
            raise DatasetFormatError(
                f"{path}: manifest has no integer format_version."
            ) from None
        if version > STORE_FORMAT_VERSION:
            raise DatasetFormatError(
                f"{path}: store format version {version} is newer than "
                f"this build reads (<= {STORE_FORMAT_VERSION})."
            )
        missing = sorted(
            {"app_name", "param_names", "n_rows", "shards"} - set(manifest)
        )
        if missing:
            raise DatasetFormatError(
                f"{path}: manifest is missing keys {missing}."
            )
        if manifest.get("fingerprints_stale"):
            logger.warning(
                "%s: fingerprints are stale (interrupted ingest?); run "
                "refresh_fingerprints() to recompute them", root
            )
        return cls(root, manifest)

    @staticmethod
    def is_store(root: str | Path) -> bool:
        """True when ``root`` looks like a history store directory."""
        path = Path(root) / MANIFEST_NAME
        if not path.is_file():
            return False
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        return isinstance(manifest, dict) and manifest.get("format") == STORE_FORMAT

    # -- manifest accessors ------------------------------------------------

    @property
    def app_name(self) -> str:
        return str(self._manifest["app_name"])

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(self._manifest["param_names"])

    @property
    def n_rows(self) -> int:
        return int(self._manifest["n_rows"])

    @property
    def n_shards(self) -> int:
        return len(self._manifest["shards"])

    @property
    def scales(self) -> tuple[int, ...]:
        return tuple(int(s) for s in self._manifest["scales"])

    @property
    def fingerprint(self) -> str | None:
        """Whole-store content hash — equals
        ``dataset_fingerprint(store.to_dataset())`` and is invariant to
        how the rows were chunked into shards.  ``None`` while stale."""
        if self._manifest.get("fingerprints_stale"):
            return None
        return self._manifest["dataset_fingerprint"]

    @property
    def scale_fingerprints(self) -> dict[int, str]:
        """Per-scale content hashes (the warm-start refit keys)."""
        if self._manifest.get("fingerprints_stale"):
            return {}
        return {
            int(s): str(v)
            for s, v in self._manifest["scale_fingerprints"].items()
        }

    @property
    def shard_infos(self) -> list[dict[str, Any]]:
        """Per-shard manifest entries (name, rows, scales, fingerprint,
        source, sanitize provenance)."""
        return [dict(e) for e in self._manifest["shards"]]

    def sources(self) -> list[str]:
        """Distinct non-null shard sources, in append order."""
        out: list[str] = []
        for entry in self._manifest["shards"]:
            src = entry.get("source")
            if src is not None and src not in out:
                out.append(src)
        return out

    def has_source(self, source: str) -> bool:
        """True when some shard was appended under this source tag —
        the exactly-once guard incremental producers (campaign rounds)
        use to make re-appends after a crash idempotent."""
        return any(
            entry.get("source") == source
            for entry in self._manifest["shards"]
        )

    def __len__(self) -> int:
        return self.n_rows

    # -- append ------------------------------------------------------------

    def append(
        self,
        dataset: ExecutionDataset,
        source: str | None = None,
        sanitize: dict[str, Any] | None = None,
        defer_fingerprints: bool = False,
    ) -> dict[str, Any] | None:
        """Append one chunk of history as a new shard.

        Returns the new shard's manifest entry (``None`` for an empty
        chunk).  ``sanitize`` carries the chunk's sanitize-report dict
        into the manifest as provenance.  ``defer_fingerprints=True``
        skips the store-level fingerprint recompute (the manifest is
        marked stale); bulk ingesters use it and call
        :meth:`refresh_fingerprints` once at the end.
        """
        if dataset.app_name != self.app_name:
            raise DataValidationError(
                f"Cannot append {dataset.app_name!r} rows to a "
                f"{self.app_name!r} store."
            )
        if dataset.param_names != self.param_names:
            raise DataValidationError(
                f"Param names {list(dataset.param_names)} do not match "
                f"the store schema {list(self.param_names)}."
            )
        if len(dataset) == 0:
            return None
        name = _shard_name(self.n_shards)
        shard_dir = self.root / SHARDS_DIR / name
        write_shard(shard_dir, dataset)

        from ..data.io import dataset_fingerprint

        entry = {
            "name": name,
            "rows": len(dataset),
            "scales": [int(s) for s in dataset.scales],
            "fingerprint": dataset_fingerprint(dataset),
            "source": source,
            "sanitize": dict(sanitize) if sanitize is not None else None,
            "created_unix": time.time(),
        }
        self._manifest["shards"].append(entry)
        self._manifest["n_rows"] = self.n_rows + len(dataset)
        scales = sorted(
            set(self.scales) | {int(s) for s in dataset.scales}
        )
        self._manifest["scales"] = scales
        if defer_fingerprints:
            self._manifest["fingerprints_stale"] = True
        else:
            self._refresh_fingerprints(
                touched=[int(s) for s in dataset.scales]
            )
        self._write_manifest()
        logger.debug(
            "appended %s: %d rows (source=%s, store now %d rows)",
            name, len(dataset), source, self.n_rows,
        )
        return dict(entry)

    def refresh_fingerprints(self) -> str:
        """Recompute the store and per-scale fingerprints from the
        shards (clears a stale marker) and return the store hash."""
        self._refresh_fingerprints(touched=None)
        self._write_manifest()
        fp = self._manifest["dataset_fingerprint"]
        assert fp is not None
        return fp

    def _refresh_fingerprints(self, touched: Sequence[int] | None) -> None:
        """Recompute the whole-store hash, plus the per-scale hashes of
        ``touched`` scales (all scales when ``None`` or when stale)."""
        stale = bool(self._manifest.get("fingerprints_stale"))
        self._manifest["dataset_fingerprint"] = self._stream_fingerprint(None)
        if touched is None or stale:
            targets = list(self.scales)
            per_scale: dict[str, str] = {}
        else:
            targets = sorted(set(int(s) for s in touched))
            per_scale = dict(self._manifest.get("scale_fingerprints", {}))
        for s in targets:
            per_scale[str(s)] = self._stream_fingerprint([s])
        self._manifest["scale_fingerprints"] = per_scale
        self._manifest["fingerprints_stale"] = False

    # -- reading -----------------------------------------------------------

    def _readers(self) -> list[ShardReader]:
        return [
            ShardReader(self.root / SHARDS_DIR / entry["name"])
            for entry in self._manifest["shards"]
        ]

    def _stream_fingerprint(
        self,
        scales: Sequence[int] | None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> str:
        """Chunking-invariant content hash of a (scale-sliced) store,
        streamed column-major with constant memory."""
        readers = self._readers()
        stream = FingerprintStream(self.app_name, self.param_names)
        for name, _ in FINGERPRINT_COLUMNS:
            def chunks() -> Iterator[np.ndarray]:
                for reader in readers:
                    col = reader.column(name)
                    if scales is None:
                        for i in range(0, reader.n_rows, chunk_rows):
                            yield col[i : i + chunk_rows]
                    else:
                        mask = reader.scale_mask(scales)
                        idx = np.nonzero(mask)[0]
                        for i in range(0, len(idx), chunk_rows):
                            yield col[idx[i : i + chunk_rows]]
            stream.update_column(name, chunks())
        return stream.fingerprint()

    def iter_chunks(
        self,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        scales: Sequence[int] | None = None,
        columns: Sequence[str] | None = None,
    ) -> Iterator[dict[str, np.ndarray]]:
        """Stream the (scale-sliced) store as column dicts of at most
        ``chunk_rows`` rows each, in row order, without materializing
        the whole history."""
        use = self._check_columns(columns)
        if chunk_rows < 1:
            raise ConfigurationError("chunk_rows must be >= 1.")
        for reader in self._readers():
            if scales is None:
                idx = None
                n = reader.n_rows
            else:
                idx = np.nonzero(reader.scale_mask(scales))[0]
                n = len(idx)
            for i in range(0, n, chunk_rows):
                sel = (
                    slice(i, i + chunk_rows)
                    if idx is None
                    else idx[i : i + chunk_rows]
                )
                chunk = {
                    name: np.asarray(
                        reader.column(name)[sel], dtype=column_dtype(name)
                    )
                    for name in use
                }
                if chunk[use[0]].shape[0]:
                    yield chunk

    def _check_columns(self, columns: Sequence[str] | None) -> tuple[str, ...]:
        if columns is None:
            return COLUMN_NAMES
        unknown = sorted(set(columns) - set(COLUMN_NAMES))
        if unknown:
            raise ConfigurationError(
                f"Unknown store columns {unknown}; schema columns are "
                f"{list(COLUMN_NAMES)}."
            )
        if not columns:
            raise ConfigurationError("columns must be non-empty.")
        return tuple(columns)

    def load_columns(
        self,
        columns: Sequence[str],
        scales: Sequence[int] | None = None,
    ) -> dict[str, np.ndarray]:
        """Materialize only the named columns (optionally scale-sliced)
        — each is allocated once and filled shard by shard."""
        use = self._check_columns(columns)
        readers = self._readers()
        if scales is None:
            masks: list[np.ndarray | None] = [None] * len(readers)
            counts = [r.n_rows for r in readers]
        else:
            masks = [r.scale_mask(scales) for r in readers]
            counts = [int(m.sum()) for m in masks]  # type: ignore[union-attr]
        total = int(sum(counts))
        n_params = len(self.param_names)
        out: dict[str, np.ndarray] = {}
        for name in use:
            shape = (total, n_params) if name == "X" else (total,)
            out[name] = np.empty(shape, dtype=column_dtype(name))
        cursor = 0
        for reader, mask, count in zip(readers, masks, counts):
            if count == 0:
                continue
            for name in use:
                col = reader.column(name)
                out[name][cursor : cursor + count] = (
                    col if mask is None else col[mask]
                )
            cursor += count
        return out

    def to_dataset(
        self,
        scales: Sequence[int] | None = None,
        columns: Sequence[str] | None = None,
    ) -> ExecutionDataset | dict[str, np.ndarray]:
        """Materialize the slice a fit needs.

        With ``columns=None`` (default) returns an
        :class:`~repro.data.ExecutionDataset` of every row (optionally
        restricted to ``scales``), bit-identical to the in-memory
        concatenation of the appended chunks.  With a ``columns``
        subset, returns just those columns as a dict of arrays — the
        other column files are never read.
        """
        if columns is not None:
            return self.load_columns(columns, scales=scales)
        cols = self.load_columns(COLUMN_NAMES, scales=scales)
        if cols["nprocs"].shape[0] == 0:
            raise DataValidationError(
                f"Store slice is empty (scales={scales}); nothing to "
                "materialize."
            )
        return ExecutionDataset(
            app_name=self.app_name,
            param_names=self.param_names,
            **cols,
        )

    # -- integrity ---------------------------------------------------------

    def verify(self) -> dict[str, Any]:
        """Recompute every shard fingerprint and the store hash; raise
        :class:`~repro.errors.DatasetFormatError` on any mismatch.

        Returns a summary dict (shards checked, rows hashed) on success.
        """
        from ..data.io import dataset_fingerprint

        rows = 0
        for entry in self._manifest["shards"]:
            reader = ShardReader(self.root / SHARDS_DIR / entry["name"])
            if reader.n_rows != int(entry["rows"]):
                raise DatasetFormatError(
                    f"{entry['name']}: manifest says {entry['rows']} rows "
                    f"but the shard holds {reader.n_rows}."
                )
            shard_ds = ExecutionDataset(
                app_name=self.app_name,
                param_names=self.param_names,
                **{name: np.asarray(reader.column(name)) for name in COLUMN_NAMES},
            )
            actual = dataset_fingerprint(shard_ds)
            if actual != entry["fingerprint"]:
                raise DatasetFormatError(
                    f"{entry['name']}: content hash {actual} does not "
                    f"match the manifest ({entry['fingerprint']}) — the "
                    "shard was modified or corrupted."
                )
            rows += reader.n_rows
        if rows != self.n_rows:
            raise DatasetFormatError(
                f"Manifest row count {self.n_rows} != shard total {rows}."
            )
        if not self._manifest.get("fingerprints_stale"):
            actual = self._stream_fingerprint(None) if rows else None
            if actual != self._manifest["dataset_fingerprint"]:
                raise DatasetFormatError(
                    f"Store content hash {actual} does not match the "
                    f"manifest ({self._manifest['dataset_fingerprint']})."
                )
        return {
            "shards": self.n_shards,
            "rows": rows,
            "fingerprint": self._manifest["dataset_fingerprint"],
            "stale": bool(self._manifest.get("fingerprints_stale")),
        }

    def _classify_shard(self, shard_dir: Path, entry: dict[str, Any]) -> str | None:
        """One shard's damage class, or ``None`` when intact."""
        from ..data.io import dataset_fingerprint

        if not shard_dir.is_dir():
            return "missing-shard"
        cols: dict[str, np.ndarray] = {}
        absent: list[str] = []
        for name in COLUMN_NAMES:
            path = shard_dir / f"{name}.npy"
            if not path.is_file():
                # Optional columns are legitimately absent from shards
                # written before they existed — not damage.
                if name in OPTIONAL_COLUMNS:
                    absent.append(name)
                    continue
                return "missing-column"
            try:
                cols[name] = np.load(path, mmap_mode="r", allow_pickle=False)
            except (OSError, ValueError):
                return "unreadable-column"
            if cols[name].dtype != column_dtype(name):
                return "unreadable-column"
        rows = int(cols["nprocs"].shape[0])
        if rows != int(entry["rows"]) or any(
            int(c.shape[0]) != rows for c in cols.values()
        ):
            return "row-mismatch"
        for name in absent:
            cols[name] = np.zeros(rows, dtype=column_dtype(name))
        try:
            shard_ds = ExecutionDataset(
                app_name=self.app_name,
                param_names=self.param_names,
                **{n: np.asarray(c) for n, c in cols.items()},
            )
            actual = dataset_fingerprint(shard_ds)
        except Exception:
            # column files load but the values no longer form a valid
            # dataset (e.g. a bit flip produced NaN) — content damage
            return "hash-mismatch"
        if actual != entry["fingerprint"]:
            return "hash-mismatch"
        return None

    def fsck(self, repair: bool = True) -> FsckReport:
        """Classify damage per shard, quarantine what's broken, and
        repair the manifest so the store reopens with the surviving
        rows.

        Unlike :meth:`verify` (detect-only: first mismatch raises),
        ``fsck`` checks *every* shard and — with ``repair=True`` —
        moves damaged shards into ``quarantine/`` (never deletes data),
        sweeps orphaned temp directories from crashed appends,
        quarantines orphaned shard directories no manifest entry
        references, rewrites the manifest to cover exactly the intact
        shards, and recomputes the fingerprints.  With
        ``repair=False`` it only reports.
        """
        report = FsckReport(root=str(self.root), rows_before=self.n_rows)
        shards_root = self.root / SHARDS_DIR

        survivors: list[dict[str, Any]] = []
        for entry in self._manifest["shards"]:
            report.shards_checked += 1
            kind = self._classify_shard(shards_root / entry["name"], entry)
            if kind is None:
                survivors.append(entry)
                report.rows_retained += int(entry["rows"])
            else:
                report.damaged[entry["name"]] = kind

        known = {e["name"] for e in self._manifest["shards"]}
        orphan_tmps: list[Path] = []
        orphan_shards: list[Path] = []
        if shards_root.is_dir():
            for child in sorted(shards_root.iterdir()):
                if child.name in known or child.name in report.damaged:
                    continue
                if child.name.startswith(".tmp-"):
                    orphan_tmps.append(child)
                    report.damaged[child.name] = "orphaned-tmp"
                elif child.is_dir():
                    orphan_shards.append(child)
                    report.damaged[child.name] = "orphaned-shard"
        tmp_manifest = self.root / f".{MANIFEST_NAME}.tmp"
        if tmp_manifest.exists():
            orphan_tmps.append(tmp_manifest)
            report.damaged[tmp_manifest.name] = "orphaned-tmp"

        if not repair or report.clean:
            return report

        for name, kind in sorted(report.damaged.items()):
            if kind in ("missing-shard", "orphaned-tmp"):
                continue
            self._quarantine(shards_root / name, report)
        for child in orphan_tmps:
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
            else:
                child.unlink(missing_ok=True)
            report.orphans_removed.append(child.name)

        self._manifest["shards"] = survivors
        self._manifest["n_rows"] = sum(int(e["rows"]) for e in survivors)
        self._manifest["scales"] = sorted(
            {int(s) for e in survivors for s in e["scales"]}
        )
        if survivors:
            self._refresh_fingerprints(touched=None)
        else:
            self._manifest["dataset_fingerprint"] = None
            self._manifest["scale_fingerprints"] = {}
            self._manifest["fingerprints_stale"] = False
        self._write_manifest()
        report.repaired = True
        logger.warning(
            "%s: fsck quarantined %d shard(s), removed %d orphan(s); "
            "%d of %d rows retained",
            self.root, len(report.quarantined), len(report.orphans_removed),
            report.rows_retained, report.rows_before,
        )
        return report

    def _quarantine(self, src: Path, report: FsckReport) -> None:
        if not src.exists():
            return
        qdir = self.root / QUARANTINE_DIR
        qdir.mkdir(exist_ok=True)
        dst = qdir / src.name
        suffix = 0
        while dst.exists():
            suffix += 1
            dst = qdir / f"{src.name}.{suffix}"
        src.rename(dst)
        atomic.fsync_dir(qdir)
        atomic.fsync_dir(src.parent)
        report.quarantined.append(dst.name)

    # -- export ------------------------------------------------------------

    def export_json(
        self, path: str | Path, scales: Sequence[int] | None = None
    ) -> Path:
        """Export a (scale-sliced) copy in the legacy JSON/NPZ dataset
        format of :mod:`repro.data.io` (chosen by suffix)."""
        path = Path(path)
        dataset = self.to_dataset(scales=scales)
        assert isinstance(dataset, ExecutionDataset)
        save_dataset(dataset, path)
        return path

    def export_parquet(
        self,
        path: str | Path,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> Path:
        """Stream the store into one Parquet file (optional feature:
        needs ``pyarrow``, which is never required elsewhere).

        Parameter columns are exported one per parameter name, so the
        file is directly queryable by external tools.
        """
        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise ConfigurationError(
                "Parquet export needs the optional dependency pyarrow "
                "(pip install pyarrow)."
            ) from exc
        path = Path(path)
        fields = [pa.field(n, pa.float64()) for n in self.param_names]
        fields += [
            pa.field("nprocs", pa.int64()),
            pa.field("runtime", pa.float64()),
            pa.field("model_runtime", pa.float64()),
            pa.field("rep", pa.int64()),
            pa.field("wait_seconds", pa.float64()),
        ]
        schema = pa.schema(fields)
        with pq.ParquetWriter(path, schema) as writer:
            for chunk in self.iter_chunks(chunk_rows=chunk_rows):
                arrays = [
                    pa.array(chunk["X"][:, j])
                    for j in range(len(self.param_names))
                ]
                arrays += [
                    pa.array(chunk["nprocs"]),
                    pa.array(chunk["runtime"]),
                    pa.array(chunk["model_runtime"]),
                    pa.array(chunk["rep"]),
                    pa.array(chunk["wait_seconds"]),
                ]
                writer.write_table(pa.Table.from_arrays(arrays, schema=schema))
        return path

    # -- reporting ---------------------------------------------------------

    def describe(self) -> str:
        """Human-readable manifest summary."""
        fp = self.fingerprint
        lines = [
            f"history store : {self.root}",
            f"application   : {self.app_name}",
            f"params        : {', '.join(self.param_names)}",
            f"rows          : {self.n_rows} across {self.n_shards} shard(s)",
            f"scales        : {list(self.scales)}",
            f"fingerprint   : {fp if fp else 'STALE (refresh needed)'}",
        ]
        for entry in self._manifest["shards"]:
            san = entry.get("sanitize")
            extra = ""
            if san:
                dropped = sum((san.get("dropped") or {}).values())
                imputed = sum((san.get("imputed") or {}).values())
                if dropped or imputed:
                    extra = f"  [sanitize: -{dropped} rows, ~{imputed} imputed]"
            src = f"  <- {entry['source']}" if entry.get("source") else ""
            lines.append(
                f"  {entry['name']}: {entry['rows']:>8d} rows, "
                f"scales {entry['scales']}{src}{extra}"
            )
        return "\n".join(lines)

    # -- manifest persistence ----------------------------------------------

    def _write_manifest(self) -> None:
        atomic.atomic_replace(
            self.root / MANIFEST_NAME,
            json.dumps(self._manifest, sort_keys=True, indent=1),
            op="store.manifest",
        )
