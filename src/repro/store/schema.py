"""Column schema of the history shard store.

A history store persists the exact columns of an
:class:`~repro.data.ExecutionDataset` — a parameter matrix plus four
fixed-width vectors — as one numpy file per column per shard.  The
schema (column names, dtypes, dimensionality) is versioned in the store
manifest so future layout changes stay loadable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "COLUMNS",
    "COLUMN_NAMES",
    "OPTIONAL_COLUMNS",
    "column_dtype",
]

#: Manifest ``format`` marker identifying a directory as a history store.
STORE_FORMAT = "repro-history-store"

#: Bump on any manifest/shard layout change.  Version 2 added the
#: optional ``wait_seconds`` column; version-1 stores (and version-1
#: shards inside upgraded stores) keep loading, with the missing column
#: synthesized as zeros.
STORE_FORMAT_VERSION = 2

#: Canonical column order: ``(name, dtype, ndim)``.  The first five
#: match :data:`repro.data.io.FINGERPRINT_COLUMNS` so store fingerprints
#: and dataset fingerprints agree byte-for-byte; optional columns hash
#: into neither (they are operational metadata, and including them would
#: orphan every fingerprint minted before they existed).
COLUMNS = (
    ("X", np.float64, 2),
    ("nprocs", np.int64, 1),
    ("runtime", np.float64, 1),
    ("model_runtime", np.float64, 1),
    ("rep", np.int64, 1),
    ("wait_seconds", np.float64, 1),
)

COLUMN_NAMES = tuple(name for name, _, _ in COLUMNS)

#: Columns a shard may lack (written by an older build); readers
#: synthesize zeros instead of flagging the shard as damaged.
OPTIONAL_COLUMNS = frozenset({"wait_seconds"})

_DTYPES = {name: dtype for name, dtype, _ in COLUMNS}


def column_dtype(name: str) -> np.dtype:
    """Canonical dtype of a schema column."""
    return np.dtype(_DTYPES[name])
