"""Crash-consistent filesystem primitives shared by every durable writer.

Every tmp+rename path in the library — store shard commits, manifest
updates, registry registrations, artifact saves, campaign checkpoints —
goes through this one module, so the durability protocol cannot drift
between subsystems.  The protocol is the full crash-safe sequence, not
just ``os.replace``:

1. write the payload to a temp name **and fsync the file**, so the
   bytes are on the platter before anything points at them;
2. ``os.replace`` onto the final name (atomic on POSIX);
3. **fsync the parent directory**, so the rename itself survives a
   power cut.

Without steps 1 and 3, a crash shortly after the rename can resurface
as a zero-length or garbage file under the *final* name — the classic
torn-rename bug this module exists to close.

All primitive operations route through a process-global
:class:`FilesystemBackend`.  The default backend talks to the real
filesystem; :class:`repro.chaos.ChaosFS` swaps itself in to inject
torn writes, ENOSPC/EIO faults, and scripted crashes at the named
*crashpoints* each protocol step fires (``"<op>:before-write"``,
``"<op>:write"``, ``"<op>:before-rename"``, ``"<op>:after-rename"``,
``"<op>:read"``).  The ``op`` label identifies the logical writer
(``store.manifest``, ``registry.register``, ``campaign.checkpoint``,
...), so a chaos schedule can target one durability boundary at a
time.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

__all__ = [
    "FilesystemBackend",
    "get_backend",
    "set_backend",
    "atomic_replace",
    "atomic_replace_bytes",
    "write_file_bytes",
    "commit_dir",
    "read_bytes",
    "read_text",
    "fsync_dir",
]


class FilesystemBackend:
    """Primitive filesystem operations behind the atomic protocol.

    The base class is the real thing; fault injectors subclass it and
    override individual primitives.  ``checkpoint`` is a no-op hook
    fired between protocol steps — a chaos backend turns it into a
    scripted crash site.
    """

    def checkpoint(self, step: str) -> None:
        """Crashpoint hook; the real backend does nothing here."""

    def write_bytes(self, path: Path, data: bytes, op: str = "file") -> None:
        """Write ``data`` to ``path`` and fsync the file."""
        with open(path, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def replace(self, src: Path, dst: Path, op: str = "file") -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: Path) -> None:
        """Fsync a directory so renames/creates in it are durable.

        Best-effort: platforms (or filesystems) that cannot open a
        directory for fsync are silently tolerated — the atomic rename
        itself still holds there.
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def read_bytes(self, path: Path, op: str = "file") -> bytes:
        return Path(path).read_bytes()


_BACKEND: FilesystemBackend = FilesystemBackend()


def get_backend() -> FilesystemBackend:
    """The currently installed backend (the real one unless a fault
    injector swapped itself in)."""
    return _BACKEND


def set_backend(backend: FilesystemBackend) -> FilesystemBackend:
    """Install ``backend`` and return the previous one (for restore)."""
    global _BACKEND
    previous = _BACKEND
    _BACKEND = backend
    return previous


def fsync_dir(path: str | Path) -> None:
    """Fsync one directory (exposed for writers that manage their own
    staging layout)."""
    _BACKEND.fsync_dir(Path(path))


def write_file_bytes(path: str | Path, data: bytes, op: str = "file") -> None:
    """Durable (fsynced) write of one file, **not** atomic on its own.

    Use inside a staging directory that is later committed with
    :func:`commit_dir`; use :func:`atomic_replace_bytes` for files that
    replace a live one in place.
    """
    path = Path(path)
    b = _BACKEND
    b.checkpoint(f"{op}:before-write")
    b.write_bytes(path, data, op=op)


def atomic_replace_bytes(
    target: str | Path, data: bytes, op: str = "file"
) -> None:
    """Atomically (and durably) replace ``target`` with ``data``.

    A crash at any point leaves either the complete old file or the
    complete new file under ``target`` — never a prefix.  A stale
    ``.<name>.tmp`` sibling from an earlier crash is simply
    overwritten.
    """
    target = Path(target)
    b = _BACKEND
    tmp = target.parent / f".{target.name}.tmp"
    b.checkpoint(f"{op}:before-write")
    b.write_bytes(tmp, data, op=op)
    b.checkpoint(f"{op}:before-rename")
    b.replace(tmp, target, op=op)
    b.checkpoint(f"{op}:after-rename")
    b.fsync_dir(target.parent)


def atomic_replace(
    target: str | Path, text: str, op: str = "file", encoding: str = "utf-8"
) -> None:
    """Text-mode convenience wrapper over :func:`atomic_replace_bytes`."""
    atomic_replace_bytes(target, text.encode(encoding), op=op)


def commit_dir(staging: str | Path, target: str | Path, op: str = "dir") -> None:
    """Durably move a fully-written staging directory into place.

    The staging directory's entries are fsynced (its files must already
    have been written through :func:`write_file_bytes`, which fsyncs
    each one), the directory is renamed onto ``target``, and the parent
    is fsynced.  An existing ``target`` is removed first — callers only
    replace *orphan* directories no manifest references, so the
    non-atomic remove+rename window never exposes a referenced path.
    """
    staging, target = Path(staging), Path(target)
    b = _BACKEND
    b.fsync_dir(staging)
    b.checkpoint(f"{op}:before-rename")
    if target.exists():
        shutil.rmtree(target)
    b.replace(staging, target, op=op)
    b.checkpoint(f"{op}:after-rename")
    b.fsync_dir(target.parent)


def read_bytes(path: str | Path, op: str = "file") -> bytes:
    """Read a file through the backend (the EIO injection point)."""
    b = _BACKEND
    b.checkpoint(f"{op}:read")
    return b.read_bytes(Path(path), op=op)


def read_text(path: str | Path, op: str = "file", encoding: str = "utf-8") -> str:
    return read_bytes(path, op=op).decode(encoding)
