"""Pluggable extractors: raw history sources → streams of record chunks.

An extractor is anything with a ``chunks(chunk_rows)`` method yielding
lists of *raw record mappings* — plain dicts with the fields

======================= ======================================================
``params``              mapping of parameter name → value (a flat source may
                        instead carry parameters as extra top-level keys)
``nprocs``              process count of the run
``runtime``             observed runtime (``None``/NaN for failed runs)
``model_runtime``       noise-free model runtime; optional, falls back to
                        ``runtime``
``rep``                 repetition index; optional, defaults to 0
``app_name``            optional; checked for consistency when present
======================= ======================================================

Extractors only *parse and chunk*; type coercion, schema checks, and
row-level rejection live in :class:`repro.store.etl.IngestPipeline`, so
every source format gets identical validation.  Each built-in extractor
streams its source — no extractor ever holds more than one chunk.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..data.dataset import ExecutionDataset
from ..errors import ConfigurationError, DatasetFormatError
from ..sim.trace import ExecutionRecord

__all__ = [
    "RESERVED_FIELDS",
    "normalize_record",
    "JSONLExtractor",
    "CSVExtractor",
    "DatasetExtractor",
    "RecordStreamExtractor",
    "extractor_for_path",
]

#: Top-level keys with fixed meaning; anything else in a flat record is
#: treated as a parameter column.
RESERVED_FIELDS = frozenset(
    {
        "app_name",
        "params",
        "nprocs",
        "runtime",
        "model_runtime",
        "rep",
        "wait_seconds",
    }
)


def normalize_record(obj: Mapping[str, Any], origin: str) -> dict[str, Any]:
    """Normalize one raw mapping into the canonical record-dict shape.

    Nested ``params`` dicts pass through; flat records (CSV rows, flat
    JSON objects) have their non-reserved keys gathered into ``params``.
    ``origin`` names the source location (file:line) for error messages.
    """
    if not isinstance(obj, Mapping):
        raise DatasetFormatError(
            f"{origin}: record is {type(obj).__name__}, expected an object."
        )
    params = obj.get("params")
    if params is None:
        params = {k: v for k, v in obj.items() if k not in RESERVED_FIELDS}
    elif not isinstance(params, Mapping):
        raise DatasetFormatError(
            f"{origin}: 'params' is {type(params).__name__}, expected an "
            "object."
        )
    return {
        "app_name": obj.get("app_name"),
        "params": dict(params),
        "nprocs": obj.get("nprocs"),
        "runtime": obj.get("runtime"),
        "model_runtime": obj.get("model_runtime"),
        "rep": obj.get("rep"),
        "wait_seconds": obj.get("wait_seconds"),
        "origin": origin,
    }


class JSONLExtractor:
    """One JSON object per line (the streaming sibling of the legacy
    record-list JSON format)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def chunks(self, chunk_rows: int) -> Iterator[list[dict[str, Any]]]:
        chunk: list[dict[str, Any]] = []
        with open(self.path) as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                origin = f"{self.path}:{line_no}"
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DatasetFormatError(
                        f"{origin}: invalid JSON: {exc}"
                    ) from exc
                chunk.append(normalize_record(obj, origin))
                if len(chunk) >= chunk_rows:
                    yield chunk
                    chunk = []
        if chunk:
            yield chunk


class CSVExtractor:
    """Header-addressed CSV: ``nprocs`` and ``runtime`` columns are
    required; ``app_name``, ``model_runtime``, ``rep`` are optional; any
    other column is a parameter."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def chunks(self, chunk_rows: int) -> Iterator[list[dict[str, Any]]]:
        chunk: list[dict[str, Any]] = []
        with open(self.path, newline="") as fh:
            reader = csv.DictReader(fh)
            if reader.fieldnames is None:
                raise DatasetFormatError(f"{self.path}: empty CSV (no header).")
            missing = {"nprocs", "runtime"} - set(reader.fieldnames)
            if missing:
                raise DatasetFormatError(
                    f"{self.path}: CSV header is missing required "
                    f"column(s) {sorted(missing)}."
                )
            for row in reader:
                origin = f"{self.path}:{reader.line_num}"
                cleaned = {
                    k: (None if v == "" else v)
                    for k, v in row.items()
                    if k is not None
                }
                chunk.append(normalize_record(cleaned, origin))
                if len(chunk) >= chunk_rows:
                    yield chunk
                    chunk = []
        if chunk:
            yield chunk


class DatasetExtractor:
    """Re-chunk an in-memory :class:`~repro.data.ExecutionDataset` —
    used to pour legacy JSON/NPZ histories into a store, and by the
    equivalence tests (same rows, any chunking, same fingerprints)."""

    def __init__(self, dataset: ExecutionDataset) -> None:
        self.dataset = dataset

    def chunks(self, chunk_rows: int) -> Iterator[list[dict[str, Any]]]:
        ds = self.dataset
        for start in range(0, len(ds), chunk_rows):
            stop = min(start + chunk_rows, len(ds))
            chunk = []
            for i in range(start, stop):
                chunk.append(
                    {
                        "app_name": ds.app_name,
                        "params": {
                            name: float(ds.X[i, j])
                            for j, name in enumerate(ds.param_names)
                        },
                        "nprocs": int(ds.nprocs[i]),
                        "runtime": float(ds.runtime[i]),
                        "model_runtime": float(ds.model_runtime[i]),
                        "rep": int(ds.rep[i]),
                        "wait_seconds": float(ds.wait_seconds[i]),
                        "origin": f"<dataset row {i}>",
                    }
                )
            yield chunk


class RecordStreamExtractor:
    """Adapt an iterable of :class:`~repro.sim.ExecutionRecord` (e.g. a
    simulator run stream) into the extractor protocol."""

    def __init__(self, records: Iterable[ExecutionRecord]) -> None:
        self._records = records
        self._consumed = False

    def chunks(self, chunk_rows: int) -> Iterator[list[dict[str, Any]]]:
        if self._consumed:
            raise ConfigurationError(
                "RecordStreamExtractor streams its source once; build a "
                "new extractor to re-ingest."
            )
        self._consumed = True
        chunk: list[dict[str, Any]] = []
        for i, r in enumerate(self._records):
            chunk.append(
                {
                    "app_name": r.app_name,
                    "params": dict(r.params),
                    "nprocs": r.nprocs,
                    "runtime": r.runtime,
                    "model_runtime": r.model_runtime,
                    "rep": r.rep,
                    "wait_seconds": r.wait_seconds,
                    "origin": f"<record {i}>",
                }
            )
            if len(chunk) >= chunk_rows:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


_SUFFIX_EXTRACTORS = {
    ".jsonl": JSONLExtractor,
    ".ndjson": JSONLExtractor,
    ".csv": CSVExtractor,
}


def extractor_for_path(path: str | Path, fmt: str = "auto"):
    """Pick an extractor for a file: by ``fmt`` (``jsonl``/``csv``) or,
    with ``auto``, by suffix."""
    path = Path(path)
    if fmt == "jsonl":
        return JSONLExtractor(path)
    if fmt == "csv":
        return CSVExtractor(path)
    if fmt != "auto":
        raise ConfigurationError(
            f"Unknown ingest format {fmt!r}; use 'jsonl', 'csv', or 'auto'."
        )
    try:
        return _SUFFIX_EXTRACTORS[path.suffix.lower()](path)
    except KeyError:
        raise DatasetFormatError(
            f"{path}: cannot infer ingest format from suffix "
            f"{path.suffix!r}; pass fmt='jsonl' or fmt='csv'."
        ) from None
