"""Structured logging for the pipeline.

Every module logs under the ``repro`` namespace (``repro.data.io``,
``repro.core.two_level``, ``repro.robustness.sanitize``, ...), so an
application embedding the library controls verbosity with one line::

    logging.getLogger("repro").setLevel(logging.DEBUG)

The library itself never installs handlers on import (standard library
etiquette); :func:`configure_logging` is the opt-in used by the CLI's
``--verbose`` flag and by scripts that want readable diagnostics.
"""

from __future__ import annotations

import logging

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure_logging"]

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger under the ``repro`` namespace.

    ``get_logger("core.two_level")`` and ``get_logger(__name__)`` (from
    inside the package) both resolve to ``repro.core.two_level``.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    verbose: bool = False, stream: object | None = None
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger.

    Idempotent: a second call reconfigures the level instead of stacking
    handlers.  Returns the configured root library logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    level = logging.DEBUG if verbose else logging.WARNING
    handler = next(
        (
            h
            for h in logger.handlers
            if isinstance(h, logging.StreamHandler)
            and getattr(h, "_repro_cli", False)
        ),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream)  # type: ignore[arg-type]
        handler._repro_cli = True  # type: ignore[attr-defined]
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    handler.setLevel(level)
    logger.setLevel(level)
    return logger
