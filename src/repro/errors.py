"""Structured exception taxonomy for the whole pipeline.

Every error the library raises on purpose derives from
:class:`ReproError`, so callers (and the CLI) can catch one type and
get a machine-classifiable failure instead of a bare ``ValueError``
bubbling out of numpy code.  Each subclass also inherits the builtin
exception it historically replaced (``ValueError`` or
``RuntimeError``), so pre-taxonomy callers keep working unchanged.

Hierarchy::

    ReproError
    ├── ConfigurationError  (ValueError)   bad constructor/call arguments
    ├── DataValidationError (ValueError)   corrupt or malformed input data
    │   └── DatasetFormatError             unreadable persisted dataset
    ├── FitDegenerateError  (ValueError)   training data cannot support a fit
    ├── ExtrapolationError  (ValueError)   prediction target outside what the
    │                                      fitted model can answer
    ├── NotFittedError      (RuntimeError) predict/transform before fit
    ├── SimulationError     (RuntimeError) the simulator produced an invalid
    │   │                                  result for a valid request
    │   └── ExecutionTimeoutError          a run exceeded its wall-clock
    │                                      budget on every allowed attempt
    ├── ArtifactError       (ValueError)   persisted-model problems
    │   ├── ArtifactFormatError            artifact cannot be decoded
    │   │   └── ArtifactVersionError       schema newer than this build reads
    │   └── ArtifactIntegrityError         payload checksum mismatch
    ├── RegistryError       (ValueError)   unknown model/version in a registry
    ├── PredictionRequestError (ValueError) invalid request to the
    │                                      prediction service
    └── ServingError        (RuntimeError) the serving layer refused or
        │                                  abandoned a request
        ├── AuthenticationError            missing or wrong bearer token (401)
        ├── RateLimitedError               over the request-rate budget (429)
        ├── DeadlineExceededError          per-request deadline blown (504)
        └── ServiceUnavailableError        no servable artifact, even
                                           degraded (503)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .sim.budget import AttemptTrace
    from .sim.trace import ExecutionRecord

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataValidationError",
    "DatasetFormatError",
    "FitDegenerateError",
    "ExtrapolationError",
    "NotFittedError",
    "SimulationError",
    "ExecutionTimeoutError",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactVersionError",
    "ArtifactIntegrityError",
    "RegistryError",
    "PredictionRequestError",
    "ServingError",
    "AuthenticationError",
    "RateLimitedError",
    "DeadlineExceededError",
    "ServiceUnavailableError",
]


class ReproError(Exception):
    """Base class of every deliberate error raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An argument to a constructor or method is invalid (caller bug)."""


class DataValidationError(ReproError, ValueError):
    """Input data is corrupt, malformed, or violates an invariant."""


class DatasetFormatError(DataValidationError):
    """A persisted dataset cannot be decoded (missing keys, unknown
    format version, unreadable payload)."""


class FitDegenerateError(ReproError, ValueError):
    """The training data cannot support the requested fit, and no
    fallback remains (e.g. fewer than two usable scales)."""


class ExtrapolationError(ReproError, ValueError):
    """A prediction was requested that the fitted model cannot answer
    (e.g. a scale outside a transfer model's fitted targets)."""


class NotFittedError(ReproError, RuntimeError):
    """``predict``/``transform`` was called before ``fit``."""


class SimulationError(ReproError, RuntimeError):
    """The simulator produced an invalid result for a valid request
    (e.g. a cost model yielding a non-positive runtime)."""


class ExecutionTimeoutError(SimulationError):
    """A simulated run exceeded its wall-clock budget on every allowed
    attempt.

    Structured payload (all optional, ``None`` when unknown):

    Attributes
    ----------
    partial_runtime:
        Censored wall-clock seconds observed before the final kill —
        i.e. the budget limit in force on the last attempt.  This is a
        *lower bound* on the true runtime, exactly what a scheduler log
        records for a killed job.
    attempts:
        Full :class:`~repro.sim.budget.AttemptTrace` of every
        submission, including backoff delays and per-attempt limits.
    record:
        The censored :class:`~repro.sim.trace.ExecutionRecord` a caller
        may keep in a history instead of losing the run (its ``runtime``
        equals ``partial_runtime`` and ``censored`` is True).
    """

    def __init__(
        self,
        message: str,
        *,
        partial_runtime: float | None = None,
        attempts: "AttemptTrace | None" = None,
        record: "ExecutionRecord | None" = None,
    ) -> None:
        super().__init__(message)
        self.partial_runtime = partial_runtime
        self.attempts = attempts
        self.record = record

    def to_dict(self) -> dict[str, Any]:
        return {
            "message": str(self),
            "partial_runtime": self.partial_runtime,
            "n_attempts": None if self.attempts is None else len(self.attempts),
        }


class ArtifactError(ReproError, ValueError):
    """A persisted model artifact cannot be saved or loaded."""


class ArtifactFormatError(ArtifactError):
    """An artifact on disk cannot be decoded (missing manifest, missing
    keys, unreadable payload)."""


class ArtifactVersionError(ArtifactFormatError):
    """An artifact was written with a schema version newer than this
    build understands."""


class ArtifactIntegrityError(ArtifactError):
    """An artifact's payload does not match the checksum recorded in its
    manifest (bit rot, truncation, or tampering)."""


class RegistryError(ReproError, ValueError):
    """A model registry operation referenced an unknown model or
    version, or the registry directory is unusable."""


class PredictionRequestError(ReproError, ValueError):
    """A prediction request is malformed (unknown/missing/non-finite
    parameters, invalid scales, or a model that cannot serve it)."""


class ServingError(ReproError, RuntimeError):
    """The serving layer refused or abandoned an otherwise valid
    request (overload protection, deadlines, total artifact loss)."""


class AuthenticationError(ServingError):
    """The request lacked a valid bearer token for a server running with
    authentication enabled (HTTP 401)."""


class RateLimitedError(ServingError):
    """The request was rejected by the server's token-bucket rate
    limiter (HTTP 429).  ``retry_after`` is the suggested wait in
    seconds before retrying."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExceededError(ServingError):
    """The per-request deadline elapsed before a response was ready
    (HTTP 504)."""


class ServiceUnavailableError(ServingError):
    """No artifact — not even a stale last-known-good one — could be
    served for the requested model (HTTP 503)."""
