"""Structured exception taxonomy for the whole pipeline.

Every error the library raises on purpose derives from
:class:`ReproError`, so callers (and the CLI) can catch one type and
get a machine-classifiable failure instead of a bare ``ValueError``
bubbling out of numpy code.  Each subclass also inherits the builtin
exception it historically replaced (``ValueError`` or
``RuntimeError``), so pre-taxonomy callers keep working unchanged.

Hierarchy::

    ReproError
    ├── ConfigurationError  (ValueError)   bad constructor/call arguments
    ├── DataValidationError (ValueError)   corrupt or malformed input data
    │   └── DatasetFormatError             unreadable persisted dataset
    ├── FitDegenerateError  (ValueError)   training data cannot support a fit
    ├── ExtrapolationError  (ValueError)   prediction target outside what the
    │                                      fitted model can answer
    └── NotFittedError      (RuntimeError) predict/transform before fit
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataValidationError",
    "DatasetFormatError",
    "FitDegenerateError",
    "ExtrapolationError",
    "NotFittedError",
]


class ReproError(Exception):
    """Base class of every deliberate error raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An argument to a constructor or method is invalid (caller bug)."""


class DataValidationError(ReproError, ValueError):
    """Input data is corrupt, malformed, or violates an invariant."""


class DatasetFormatError(DataValidationError):
    """A persisted dataset cannot be decoded (missing keys, unknown
    format version, unreadable payload)."""


class FitDegenerateError(ReproError, ValueError):
    """The training data cannot support the requested fit, and no
    fallback remains (e.g. fewer than two usable scales)."""


class ExtrapolationError(ReproError, ValueError):
    """A prediction was requested that the fitted model cannot answer
    (e.g. a scale outside a transfer model's fitted targets)."""


class NotFittedError(ReproError, RuntimeError):
    """``predict``/``transform`` was called before ``fit``."""
