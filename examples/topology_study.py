"""Topology study: does the two-level model transfer across machines?

Uses the simulator substrate directly to ask a question the paper's
real platform could not: train the model on histories from one
interconnect topology and examine how scaling curves (and prediction
accuracy) differ across fat-tree, 3-D torus, and dragonfly machines
running the alltoall-heavy 2-D FFT.

Run:  python examples/topology_study.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.apps import get_app
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator
from repro.ml.metrics import mean_absolute_percentage_error as mape
from repro.sim import Dragonfly, Executor, FatTree, Machine, NoiseModel, Torus3D

SMALL_SCALES = [32, 64, 128, 256, 512]
LARGE_SCALES = [1024, 2048]

MACHINES = {
    "fat-tree": Machine(topology=FatTree(k=16), name="fat-tree"),
    "torus-3d": Machine(topology=Torus3D((16, 16, 8)), name="torus"),
    "dragonfly": Machine(
        topology=Dragonfly(groups=16, routers_per_group=8, hosts_per_router=8),
        name="dragonfly",
    ),
}

FFT_JOB = {"n": 2048, "batches": 8}


def main() -> None:
    app = get_app("fft2d")

    print("Ground-truth FFT scaling of one job across topologies "
          "(noise-free):")
    scales = SMALL_SCALES + LARGE_SCALES + [4096]
    rows = []
    for name, machine in MACHINES.items():
        ex = Executor(machine=machine,
                      noise=NoiseModel(sigma=0, jitter_prob=0))
        times = [ex.model_time(app, FFT_JOB, p) for p in scales]
        rows.append([name] + [f"{t:.4g}" for t in times])
    print(ascii_table(["machine"] + [f"p={p}" for p in scales], rows,
                      title="t(p) [s] for n=2048, batches=8"))

    print("\nPer-machine two-level models (trained and tested on the "
          "same machine):")
    acc_rows = []
    for name, machine in MACHINES.items():
        ex = Executor(machine=machine, seed=3)
        gen = HistoryGenerator(app, executor=ex, seed=3)
        train = gen.collect(gen.sample_configs(80), SMALL_SCALES,
                            repetitions=2)
        test = gen.collect(gen.sample_configs(20), LARGE_SCALES,
                           repetitions=1)
        model = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                              random_state=0).fit(train)
        errs = []
        for s in LARGE_SCALES:
            sub = test.at_scale(s)
            pred = model.predict(sub.X, [s])[:, 0]
            errs.append(f"{100 * mape(sub.runtime, pred):.1f}%")
        supports = {c: "+".join(t) for c, t in model.support_names().items()}
        acc_rows.append([name] + errs + [str(supports)])
    print(ascii_table(
        ["machine"] + [f"MAPE p={s}" for s in LARGE_SCALES] + ["selected terms"],
        acc_rows,
        title="Two-level accuracy per topology",
    ))

    print("\nCross-machine transfer (train on fat-tree, test on others):")
    ex_ft = Executor(machine=MACHINES["fat-tree"], seed=3)
    gen_ft = HistoryGenerator(app, executor=ex_ft, seed=3)
    train_ft = gen_ft.collect(gen_ft.sample_configs(80), SMALL_SCALES,
                              repetitions=2)
    model_ft = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                             random_state=0).fit(train_ft)
    transfer_rows = []
    for name, machine in MACHINES.items():
        ex = Executor(machine=machine, seed=5)
        gen = HistoryGenerator(app, executor=ex, seed=5)
        test = gen.collect(gen.sample_configs(20), LARGE_SCALES, repetitions=1)
        errs = []
        for s in LARGE_SCALES:
            sub = test.at_scale(s)
            pred = model_ft.predict(sub.X, [s])[:, 0]
            errs.append(f"{100 * mape(sub.runtime, pred):.1f}%")
        transfer_rows.append([name] + errs)
    print(ascii_table(
        ["test machine"] + [f"MAPE p={s}" for s in LARGE_SCALES],
        transfer_rows,
        title="Fat-tree-trained model evaluated elsewhere "
        "(degradation expected off-platform)",
    ))
    print("\nTakeaway: performance models are platform-specific — the "
          "history must come from the machine being predicted, exactly "
          "as the paper assumes.")


if __name__ == "__main__":
    main()
