"""Active history growth: spend a measurement budget where it matters.

A practical workflow on top of the paper's pipeline: fit on the
existing history, ask the planner where the interpolation ensembles
disagree most per core-second, execute exactly those runs in the
simulator, refit, and measure how much large-scale accuracy the budget
bought — against the baseline of spending the same budget on random
runs.

Run:  python examples/history_planning.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.apps import get_app
from repro.core import HistoryPlanner, TwoLevelModel
from repro.data import ExecutionDataset, HistoryGenerator
from repro.ml.metrics import mean_absolute_percentage_error as mape

SMALL_SCALES = [32, 64, 128, 256, 512]
LARGE_SCALES = [1024, 2048]
BUDGET_CORE_SECONDS = 30_000.0


def evaluate(model, test):
    return [
        100.0 * mape(
            test.at_scale(s).runtime,
            model.predict(test.at_scale(s).X, [s])[:, 0],
        )
        for s in LARGE_SCALES
    ]


def main() -> None:
    app = get_app("stencil3d")
    gen = HistoryGenerator(app, seed=31)

    print("Initial history: 40 configurations (deliberately sparse)...")
    train = gen.collect(gen.sample_configs(40), SMALL_SCALES, repetitions=1)
    test = gen.collect(gen.sample_configs(25), LARGE_SCALES, repetitions=1)

    base_model = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                               random_state=0).fit(train)
    base_err = evaluate(base_model, test)

    # --- planned augmentation -------------------------------------------
    planner = HistoryPlanner(base_model, app, n_candidates=400,
                             random_state=1)
    plan = planner.plan(BUDGET_CORE_SECONDS)
    print(f"Planner selected {len(plan)} configuration bundles "
          f"({sum(r.est_cost_core_seconds for r in plan):.0f} of "
          f"{BUDGET_CORE_SECONDS:.0f} core-seconds).")
    planned_records = [
        gen.executor.run(app, r.params, scale, rep=0)
        for r in plan
        for scale in r.scales
    ]
    planned_train = train.merge(
        ExecutionDataset.from_records(planned_records,
                                      param_names=app.param_names)
    )
    planned_model = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                                  random_state=0).fit(planned_train)
    planned_err = evaluate(planned_model, test)

    # --- random augmentation (same budget, also full bundles) ------------
    rng = np.random.default_rng(2)
    random_records = []
    spent = 0.0
    while spent < BUDGET_CORE_SECONDS:
        params = app.sample_params(rng)
        bundle = [gen.executor.run(app, params, s_, rep=0)
                  for s_ in SMALL_SCALES]
        cost = sum(r.runtime * r.nprocs for r in bundle)
        if spent + cost > BUDGET_CORE_SECONDS:
            break
        random_records.extend(bundle)
        spent += cost
    random_train = train.merge(
        ExecutionDataset.from_records(random_records,
                                      param_names=app.param_names)
    )
    random_model = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                                 random_state=0).fit(random_train)
    random_err = evaluate(random_model, test)

    rows = [
        ["initial history (40 cfgs)", len(train)] +
        [f"{e:.1f}%" for e in base_err],
        [f"+ random bundles ({len(random_records)} runs)", len(random_train)] +
        [f"{e:.1f}%" for e in random_err],
        [f"+ planned bundles ({len(planned_records)} runs)", len(planned_train)] +
        [f"{e:.1f}%" for e in planned_err],
    ]
    print()
    print(ascii_table(
        ["history", "runs"] + [f"MAPE p={s}" for s in LARGE_SCALES],
        rows,
        title=f"Value of {BUDGET_CORE_SECONDS:.0f} core-seconds of new runs "
        "(stencil3d)",
    ))
    print("\nTakeaway: whole-configuration bundles are the right unit of "
          "history growth (per-scale cherry-picking skews the per-scale "
          "training sets and measurably hurts). Disagreement-per-cost "
          "targeting is cost-aware and competitive with random bundles; "
          "its practical value is the budget accounting.")


if __name__ == "__main__":
    main()
