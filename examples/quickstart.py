"""Quickstart: predict large-scale runtime from small-scale history.

Walks the full pipeline on the 3-D stencil application:

1. simulate a small-scale execution history (the "history data"),
2. fit the two-level model,
3. predict runtimes of *new, never-executed* configurations at scales
   8x beyond anything in the history,
4. compare against ground truth and against a direct random-forest
   baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import ascii_table, format_percent
from repro.apps import get_app
from repro.baselines import make_baseline
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator
from repro.ml.metrics import mean_absolute_percentage_error as mape

SMALL_SCALES = [32, 64, 128, 256, 512]  # processes: 1 to 16 nodes
LARGE_SCALES = [1024, 2048, 4096]  # 32 to 128 nodes — never executed


def main() -> None:
    app = get_app("stencil3d")
    gen = HistoryGenerator(app, seed=7)

    print("Collecting small-scale history (80 configurations x "
          f"{SMALL_SCALES} x 2 repetitions)...")
    train = gen.collect(gen.sample_configs(80), SMALL_SCALES, repetitions=2)
    print(train.summary())

    print("\nFitting the two-level model "
          "(per-scale forests + clustered multitask-lasso scalability)...")
    model = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                          random_state=0).fit(train)
    print("selected scalability terms per cluster:")
    for cluster, terms in model.support_names().items():
        size = model.cluster_sizes_[cluster]
        print(f"  cluster {cluster} ({size} configs): {', '.join(terms)}")

    # New configurations the model has never seen, with ground truth
    # simulated at the large scales for checking.
    test = gen.collect(gen.sample_configs(20), LARGE_SCALES, repetitions=1)

    baseline = make_baseline("direct-rf", seed=0).fit(train)

    rows = []
    for s in LARGE_SCALES:
        sub = test.at_scale(s)
        ours = model.predict(sub.X, [s])[:, 0]
        rf = baseline.predict(sub.X, s)
        rows.append(
            [f"p={s}", format_percent(mape(sub.runtime, ours)),
             format_percent(mape(sub.runtime, rf))]
        )
    print()
    print(ascii_table(
        ["target scale", "two-level MAPE", "direct-RF MAPE"],
        rows,
        title="Large-scale prediction accuracy on unseen configurations",
    ))

    # Single-configuration deep dive.
    x = test.unique_configs()[0]
    params = app.vector_to_params(x)
    print("\nExample configuration:", {k: round(v, 2) for k, v in params.items()})
    curve = model.predict(x[None, :], SMALL_SCALES + LARGE_SCALES)[0]
    for p, t in zip(SMALL_SCALES + LARGE_SCALES, curve):
        marker = " (extrapolated)" if p in LARGE_SCALES else ""
        print(f"  t({p:>5d} procs) = {t:.4g} s{marker}")


if __name__ == "__main__":
    main()
