"""Transfer mode: exploiting a few historic large-scale runs.

The paper's title scenario assumes *no* large-scale data at all.  In
practice a cluster's accounting logs usually contain a handful of past
production runs at large scale.  The two-level model's "transfer" mode
uses them: the extrapolation level learns a direct map from small-scale
performance vectors to large-scale runtimes (per curve-shape cluster,
via multitask lasso in log space).

This example quantifies how much those few large runs are worth,
comparing basis mode (no large data) against transfer mode with an
increasing number of historically-large-executed configurations.

Run:  python examples/transfer_mode.py
"""

from repro.analysis import ascii_table
from repro.apps import get_app
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator
from repro.ml.metrics import mean_absolute_percentage_error as mape

SMALL_SCALES = [32, 64, 128, 256, 512]
LARGE_SCALES = [1024, 2048, 4096]


def main() -> None:
    app = get_app("cg")
    gen = HistoryGenerator(app, seed=29)

    print("Collecting CG solver histories...")
    train = gen.collect(gen.sample_configs(100), SMALL_SCALES, repetitions=2)
    test = gen.collect(gen.sample_configs(25), LARGE_SCALES, repetitions=1)

    def score(model):
        return [
            100.0 * mape(
                test.at_scale(s).runtime,
                model.predict(test.at_scale(s).X, [s])[:, 0],
            )
            for s in LARGE_SCALES
        ]

    rows = []
    basis = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                          random_state=0).fit(train)
    rows.append(["basis mode (0 large runs)"] +
                [f"{v:.1f}%" for v in score(basis)])

    for n_large in [8, 16, 32]:
        # Historic configurations that also ran at the large scales.
        large_cfgs = gen.sample_configs(n_large)
        large_train = gen.collect(
            large_cfgs, SMALL_SCALES + LARGE_SCALES, repetitions=1
        )
        transfer = TwoLevelModel(
            small_scales=SMALL_SCALES,
            mode="transfer",
            large_scales=LARGE_SCALES,
            n_clusters=3,
            random_state=0,
        ).fit(train, large_train=large_train)
        rows.append(
            [f"transfer mode ({n_large} large runs)"]
            + [f"{v:.1f}%" for v in score(transfer)]
        )

    print()
    print(ascii_table(
        ["extrapolation level"] + [f"MAPE p={s}" for s in LARGE_SCALES],
        rows,
        title="What are a few historic large-scale runs worth? (cg)",
    ))
    print("\nTakeaway: even a handful of large-scale history runs anchors "
          "the extrapolation level far better than scale-basis "
          "extrapolation alone — when the accounting logs have them, "
          "use transfer mode.")


if __name__ == "__main__":
    main()
