"""Capacity planning: how many nodes should a production job request?

The scenario that motivates large-scale performance prediction in
practice: a user has a specific N-body simulation to run under a
deadline, history data exists only at modest scales, and machine time
at 128 nodes is too expensive to burn on trial runs.

The two-level model answers two questions without any large run:

1. *Scaling sweet spot* — at which process count does the predicted
   parallel efficiency drop below a threshold?
2. *Deadline feasibility* — what is the smallest allocation whose
   predicted runtime meets the deadline?

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.apps import get_app
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator

SMALL_SCALES = [32, 64, 128, 256, 512]
CANDIDATE_SCALES = [512, 1024, 2048, 4096, 8192]
DEADLINE_SECONDS = 0.05
EFFICIENCY_FLOOR = 0.5

#: The production configuration to plan for (never executed anywhere).
PRODUCTION_JOB = {
    "n_particles": 8e5,
    "timesteps": 200,
    "cutoff": 3.5,
    "density": 0.9,
    "rebuild_every": 10,
}


def main() -> None:
    app = get_app("nbody")
    gen = HistoryGenerator(app, seed=13)

    print("Collecting molecular-dynamics history at small scales...")
    train = gen.collect(gen.sample_configs(100), SMALL_SCALES, repetitions=2)
    model = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                          random_state=0).fit(train)

    x = app.params_to_vector(PRODUCTION_JOB)[None, :]
    pred = model.predict(x, CANDIDATE_SCALES)[0]

    # Parallel efficiency relative to the smallest candidate:
    # eff(p) = (t_base * p_base) / (t_p * p).
    base_p, base_t = CANDIDATE_SCALES[0], pred[0]
    rows = []
    feasible = None
    for p, t in zip(CANDIDATE_SCALES, pred):
        eff = (base_t * base_p) / (t * p)
        node_count = p // 32
        meets = t <= DEADLINE_SECONDS
        if meets and feasible is None:
            feasible = p
        rows.append(
            [p, node_count, f"{t:.4g}", f"{100 * eff:.0f}%",
             "yes" if meets else "no"]
        )

    print()
    print(ascii_table(
        ["procs", "nodes", "predicted t [s]", "efficiency", "meets deadline"],
        rows,
        title=f"Capacity plan for the production job "
        f"(deadline {DEADLINE_SECONDS}s)",
    ))

    sweet = model.recommend_scale(
        x[0], CANDIDATE_SCALES, efficiency_floor=EFFICIENCY_FLOOR,
        base_scale=base_p,
    )
    print(f"\nLargest allocation above {100 * EFFICIENCY_FLOOR:.0f}% "
          f"efficiency: {sweet} processes ({sweet // 32} nodes)")
    if feasible is None:
        print("No candidate allocation meets the deadline; consider "
              "reducing timesteps or relaxing the deadline.")
    else:
        print(f"Smallest deadline-feasible allocation: {feasible} processes "
              f"({feasible // 32} nodes)")

    # Honest uncertainty: propagate the interpolation-ensemble spread
    # through the extrapolation level and report a 90 % band.
    from repro.core import EnsembleUncertainty

    unc = EnsembleUncertainty(model, n_samples=40, level=0.9, random_state=0)
    interval = unc.predict_interval(x, CANDIDATE_SCALES)
    print("\n90% interpolation-noise bands (model-form error NOT included):")
    for j, p in enumerate(CANDIDATE_SCALES):
        lo, mid, hi = (interval.lower[0, j], interval.median[0, j],
                       interval.upper[0, j])
        flag = ""
        if lo <= DEADLINE_SECONDS <= hi:
            flag = "  <- deadline inside the band: treat as an open call"
        print(f"  p={p:>5d}: [{lo:.4g}, {hi:.4g}] s (median {mid:.4g}){flag}")


if __name__ == "__main__":
    main()
