"""Figure 1 — prediction error vs target scale.

The paper's central figure: MAPE as a function of the extrapolation
target scale, one line per method.  The expected shape is that every
method degrades as the target moves further from the training range,
but the two-level model's curve stays lowest and flattest while the
non-extrapolating baselines blow up.
"""

from conftest import LARGE_SCALES, report

from repro.analysis import run_method_comparison, series_block

METHODS_SHOWN = [
    "two-level",
    "direct-mlp",
    "direct-lasso",
    "direct-rf",
    "direct-knn",
]


def test_fig1_error_vs_scale(benchmark, stencil_histories):
    results = benchmark.pedantic(
        lambda: run_method_comparison(stencil_histories),
        rounds=1,
        iterations=1,
    )
    by_name = {r.name: r for r in results}
    series = {
        name: [100.0 * by_name[name].mape_by_scale[s] for s in LARGE_SCALES]
        for name in METHODS_SHOWN
    }
    report(
        series_block(
            "Figure 1 (stencil3d) — MAPE [%] vs target scale",
            "p",
            list(LARGE_SCALES),
            series,
            y_format="{:.1f}",
        )
    )
    two = series["two-level"]
    # Degradation with distance is expected...
    assert two[-1] >= two[0] * 0.5
    # ...but the two-level model must stay below the tree baseline at
    # every single target scale.
    assert all(t < r for t, r in zip(two, series["direct-rf"]))
