"""Table 3 — extrapolation-level ablation.

Dismantles the paper's extrapolation level one design choice at a time:

* multitask lasso + clustering (the paper's full method)
* multitask lasso, single cluster (no clustering)
* independent per-configuration lasso (no joint selection)
* no selection at all: full-basis least squares (the overfitting
  strawman joint selection exists to prevent)

Expected shape: full method <= no-clustering <= independent << none.
"""

from conftest import LARGE_SCALES, report

from repro.analysis import ascii_table, evaluate_predictor, fit_two_level, format_percent

VARIANTS = [
    ("multitask + clustering", dict(selection="multitask", n_clusters=3)),
    ("multitask, 1 cluster", dict(selection="multitask", n_clusters=1)),
    ("independent lasso", dict(selection="independent", n_clusters=3)),
    ("no selection (full basis)", dict(selection="none", n_clusters=3)),
]


def _run_variants(histories):
    scores = []
    for label, kwargs in VARIANTS:
        model = fit_two_level(histories, **kwargs)
        scores.append(
            evaluate_predictor(
                label,
                lambda X, s, m=model: m.predict(X, [s])[:, 0],
                histories.test,
                histories.config.large_scales,
            )
        )
    return scores


def test_table3_ablation(benchmark, stencil_histories):
    scores = benchmark.pedantic(
        lambda: _run_variants(stencil_histories), rounds=1, iterations=1
    )
    rows = [
        [s.name]
        + [format_percent(s.mape_by_scale[p]) for p in LARGE_SCALES]
        + [format_percent(s.overall_mape)]
        for s in scores
    ]
    report(
        ascii_table(
            ["extrapolation level"] + [f"p={p}" for p in LARGE_SCALES] + ["overall"],
            rows,
            title="Table 3 (stencil3d) — extrapolation-level ablation, MAPE",
        )
    )
    by_name = {s.name: s.overall_mape for s in scores}
    full = by_name["multitask + clustering"]
    # Joint sparse selection must beat fitting the whole basis.
    assert full < by_name["no selection (full basis)"]
    # And the full method must be the best or near-best variant.
    assert full <= 1.2 * min(by_name.values())
