"""Extension G — fault tolerance of the sanitized pipeline.

Injects runtime corruption (NaN / interference spikes / heavy-tailed
noise, in equal parts) into the small-scale training history at
increasing rates, repairs it with :func:`repro.robustness.sanitize_dataset`,
and measures the two-level model's large-scale accuracy.  Expected
shape: the sanitizer drops the corrupt rows, the model degrades around
any thinned scales, and MAPE at 10 % corruption stays within 2x the
clean-pipeline error.

A second series fits on the *dirty* history without sanitizing (the
model's internal scrub alone) to show what the explicit repair buys.
"""

from conftest import experiment_config, cached_histories, report

from repro.analysis import evaluate_predictor, fit_two_level, series_block
from repro.robustness import FaultInjector, FaultSpec, sanitize_dataset

CORRUPTION_RATES = [0.0, 0.05, 0.10, 0.20]


def _mape_with(histories, train):
    model = fit_two_level(
        histories.__class__(
            train=train, test=histories.test, config=histories.config
        )
    )
    score = evaluate_predictor(
        "two-level",
        lambda X, s, m=model: m.predict(X, [s])[:, 0],
        histories.test,
        histories.config.large_scales,
    )
    return 100.0 * score.overall_mape


def _sweep():
    histories = cached_histories(experiment_config("stencil3d"))
    sanitized, unsanitized = [], []
    for rate in CORRUPTION_RATES:
        if rate == 0.0:
            dirty = histories.train
        else:
            injector = FaultInjector(
                FaultSpec.runtime_corruption(rate), seed=7
            )
            dirty, _ = injector.inject(histories.train)
        clean, _ = sanitize_dataset(dirty)
        sanitized.append(_mape_with(histories, clean))
        unsanitized.append(_mape_with(histories, dirty))
    return sanitized, unsanitized


def test_extG_fault_tolerance(benchmark):
    sanitized, unsanitized = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        series_block(
            "Extension G (stencil3d) — overall MAPE [%] vs runtime "
            "corruption rate",
            "corruption",
            CORRUPTION_RATES,
            {"sanitized": sanitized, "dirty (scrub only)": unsanitized},
            y_format="{:.1f}",
        )
    )
    # Acceptance: with 10 % injected corruption the sanitized pipeline
    # completes and stays within 2x the clean-pipeline error.
    clean_mape = sanitized[0]
    at_10 = sanitized[CORRUPTION_RATES.index(0.10)]
    assert at_10 <= 2.0 * max(clean_mape, 5.0)
    # Even at 20 % the pipeline must complete with usable accuracy.
    assert sanitized[-1] < 100.0
