"""Extension I — prediction-serving latency.

Measures the query path added by :mod:`repro.serve`: a fitted two-level
model wrapped in a :class:`~repro.serve.service.PredictionService` is
driven with a scheduler-like workload (the same job mix re-evaluated
round after round).  Three regimes are timed per query:

* **uncached single** — one (config, scale) request each, cold cache
  (cleared between queries): the full forest + scalability-curve path;
* **cached single** — the same requests repeated with the cache warm;
* **cached batch** — the whole mix in one ``predict_batch`` call with
  the cache warm.

Expected shape (and the acceptance bar of the serving extension): warm
cached queries are at least an order of magnitude cheaper per
prediction than the uncached path, and batching adds amortization on
top of that.
"""

import time

import numpy as np
from conftest import cached_histories, experiment_config, report

from repro.analysis import fit_two_level, series_block
from repro.serve import ModelArtifact, PredictionService

N_CONFIGS = 16  # distinct jobs in the scheduler's mix
N_ROUNDS = 30  # re-evaluation rounds timed per regime
SCALES = [1024, 2048]


def _p50_us(samples):
    return float(np.percentile(np.asarray(samples) * 1e6, 50))


def _setup():
    histories = cached_histories(experiment_config("stencil3d"))
    model = fit_two_level(histories)
    artifact = ModelArtifact.create(
        model,
        app_name=histories.train.app_name,
        param_names=histories.train.param_names,
        train=histories.train,
    )
    service = PredictionService(artifact, name="bench", version=1)
    X = histories.test.unique_configs()[:N_CONFIGS]
    requests = [
        (dict(zip(histories.train.param_names, row)), SCALES) for row in X
    ]
    return service, requests


def _sweep():
    service, requests = _setup()

    uncached = []
    for _ in range(N_ROUNDS):
        for params, scales in requests:
            service.clear_cache()
            t0 = time.perf_counter()
            service.predict_one(params, scales)
            uncached.append(
                (time.perf_counter() - t0) / len(scales)
            )

    service.clear_cache()
    service.predict_batch(requests)  # warm the cache once
    cached_single = []
    for _ in range(N_ROUNDS):
        for params, scales in requests:
            t0 = time.perf_counter()
            service.predict_one(params, scales)
            cached_single.append(
                (time.perf_counter() - t0) / len(scales)
            )

    cached_batch = []
    n_preds = sum(len(s) for _, s in requests)
    for _ in range(N_ROUNDS):
        t0 = time.perf_counter()
        service.predict_batch(requests)
        cached_batch.append((time.perf_counter() - t0) / n_preds)

    metrics = service.metrics()
    return (
        _p50_us(uncached),
        _p50_us(cached_single),
        _p50_us(cached_batch),
        metrics["cache"]["hit_rate"],
    )


def test_extI_serving_latency(benchmark):
    p50_uncached, p50_cached, p50_batch, hit_rate = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    report(
        series_block(
            "Extension I (stencil3d) — serving latency per prediction "
            f"[us, p50] over {N_CONFIGS} configs x {SCALES} "
            f"({N_ROUNDS} rounds; warm cache hit rate "
            f"{100 * hit_rate:.0f} %)",
            "regime",
            ["uncached-1", "cached-1", "cached-batch"],
            {"p50 [us]": [p50_uncached, p50_cached, p50_batch]},
            y_format="{:.1f}",
        )
    )
    # The serving extension's acceptance bar: a warm cached batch is at
    # least 10x cheaper per prediction than the uncached model path.
    assert p50_batch * 10.0 <= p50_uncached, (
        f"cached batch p50 {p50_batch:.1f}us not 10x below "
        f"uncached p50 {p50_uncached:.1f}us"
    )
    assert p50_cached * 5.0 <= p50_uncached
    assert hit_rate > 0.5
