"""Extension M — packed-pipeline inference kernels.

Measures the schema-v2 packed serving path end to end: the fitted
two-level model is exported to a :class:`~repro.core.PackedPipeline`
(one contiguous tree arena per scale level, pure-numpy traversal) and
timed against the object path it must match bit for bit.

Four regimes:

* **uncached single, interp** — one config at one fitted small scale
  (arena traversal only, the cheapest miss the service can take);
* **uncached single, extrap** — one config at one large scale (arena
  traversal + cluster assignment + scaling-curve evaluation);
* **uncached curve** — one config across the full small+large scale
  curve (the extrapolation solve is shared across all targets, so a
  whole curve costs barely more than one extrapolated point);
* **sustained batch** — a scheduler-sized batch through
  ``predict(X, scales)``, reported as predictions/second.

Acceptance bars (the packed-inference extension): uncached
single-prediction p50 at or under ~100 us, sustained batch throughput
at or over 100k predictions/s, and the packed path bit-identical to
the object path on every cell it serves.
"""

import time

import numpy as np
from conftest import cached_histories, experiment_config, report

from repro.analysis import fit_two_level, series_block

N_SINGLE = 300  # timed repetitions per single-query regime
N_BATCH_ROUNDS = 20  # timed repetitions of the batch regime
BATCH_CONFIGS = 512


def _p50_us(samples):
    return float(np.percentile(np.asarray(samples) * 1e6, 50))


def _time_single(fn, reps):
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return _p50_us(samples)


def _sweep():
    histories = cached_histories(experiment_config("stencil3d"))
    model = fit_two_level(histories)
    packed = model.pack()
    small = list(model.small_scales)
    curve = small + [1024, 2048, 4096]

    X = histories.test.unique_configs().astype(float)
    x1 = np.ascontiguousarray(X[:1])
    Xb = np.ascontiguousarray(
        np.tile(X, (BATCH_CONFIGS // len(X) + 1, 1))[:BATCH_CONFIGS]
    )

    # Parity gate first: a fast wrong answer is worthless.
    for scales in (small, [2048], curve):
        if not (
            packed.predict(X, scales) == model.predict(X, scales)
        ).all():
            raise AssertionError(
                f"packed path diverged from object path at {scales}"
            )

    interp_us = _time_single(
        lambda: packed.predict(x1, [small[0]]), N_SINGLE
    )
    extrap_us = _time_single(lambda: packed.predict(x1, [2048]), N_SINGLE)
    curve_us = _time_single(lambda: packed.predict(x1, curve), N_SINGLE)

    object_us = _time_single(lambda: model.predict(x1, [2048]), N_SINGLE)

    n_cells = Xb.shape[0] * len(curve)
    rates = []
    for _ in range(N_BATCH_ROUNDS):
        t0 = time.perf_counter()
        packed.predict(Xb, curve)
        rates.append(n_cells / (time.perf_counter() - t0))
    throughput = float(np.percentile(rates, 50))

    return interp_us, extrap_us, curve_us, object_us, throughput, len(curve)


def test_extM_packed_inference(benchmark):
    interp_us, extrap_us, curve_us, object_us, throughput, k = (
        benchmark.pedantic(_sweep, rounds=1, iterations=1)
    )
    report(
        series_block(
            "Extension M (stencil3d) — packed-pipeline inference "
            f"[p50 over {N_SINGLE} reps; batch {BATCH_CONFIGS} configs "
            f"x {k} scales, {N_BATCH_ROUNDS} rounds]",
            "regime",
            [
                "interp-1 [us]",
                "extrap-1 [us]",
                f"curve-{k} [us]",
                "object-1 [us]",
                "batch [kpred/s]",
            ],
            {
                "value": [
                    interp_us,
                    extrap_us,
                    curve_us,
                    object_us,
                    throughput / 1e3,
                ]
            },
            y_format="{:.1f}",
        )
    )
    # Acceptance bars for the packed extension.
    assert interp_us <= 100.0, (
        f"uncached interp p50 {interp_us:.1f}us exceeds the 100us bar"
    )
    assert throughput >= 100_000.0, (
        f"sustained throughput {throughput:.0f} preds/s under 100k/s"
    )
    # The packed path must beat the object path it mirrors by a wide
    # margin (measured ~100x; 10x leaves room for machine noise).
    assert extrap_us * 10.0 <= object_us, (
        f"packed extrap p50 {extrap_us:.1f}us not 10x below object "
        f"path {object_us:.1f}us"
    )
    # One shared NNLS solve per row: a whole curve may cost at most a
    # small multiple of a single extrapolated point.
    assert curve_us <= 3.0 * extrap_us
