"""Extension C — known-configuration scalability extrapolation.

The complementary scenario to the paper's main one: the queried
configuration HAS been executed at the small scales (no interpolation
needed), and only the scale is extrapolated.  Compares the paper's
extrapolation level (clustered multitask selection, fit on measured
curves) against per-configuration baselines: Extra-P-style hypothesis
search, Amdahl's law, and the universal scalability law.

Expected shape: the clustered multitask approach matches or beats the
independent Extra-P fit (it pools shape information across similar
configurations) and both dominate the rigid analytic laws.
"""

import numpy as np
from conftest import LARGE_SCALES, SMALL_SCALES, report

from repro.analysis import ascii_table, format_percent
from repro.baselines import CurveFitBaseline, fit_amdahl, fit_usl
from repro.core import ClusteredScalingExtrapolator
from repro.ml.metrics import mean_absolute_percentage_error as mape


def _run(histories):
    cfg_train, S_train = histories.train.runtime_matrix(SMALL_SCALES)
    # Measured small-scale curves for the *test* configurations: rerun
    # them noise-free at small scales via their ground-truth model curve
    # is not available here, so use the test set's own configs through
    # the train generator pattern — the histories fixture only carries
    # large-scale test runs, so build small-scale curves from the
    # training history's held-back tail instead.
    n_hold = max(10, len(cfg_train) // 5)
    S_hold, cfg_hold = S_train[-n_hold:], cfg_train[-n_hold:]
    S_fit, _ = S_train[:-n_hold], cfg_train[:-n_hold]

    # Ground truth at large scales for the held-out configs.
    from repro.analysis.evaluation import ExperimentConfig  # noqa: F401
    from repro.apps import get_app
    from repro.sim import Executor, NoiseModel

    app = get_app(histories.config.app_name)
    ex = Executor(
        noise=NoiseModel(sigma=0.0, jitter_prob=0.0),
        seed=histories.config.seed,
    )
    Y_true = np.array(
        [
            [ex.model_time(app, app.vector_to_params(row), p) for p in LARGE_SCALES]
            for row in cfg_hold
        ]
    )

    results = {}
    extrap = ClusteredScalingExtrapolator(
        SMALL_SCALES, n_clusters=3, random_state=0
    ).fit(S_fit)
    results["clustered multitask (ours)"] = extrap.predict(S_hold, LARGE_SCALES)

    cf = CurveFitBaseline(SMALL_SCALES).fit(S_hold)
    results["extra-p style (per config)"] = cf.predict(LARGE_SCALES)

    p_large = np.asarray(LARGE_SCALES, dtype=float)
    results["amdahl"] = np.vstack(
        [fit_amdahl(SMALL_SCALES, s)(p_large) for s in S_hold]
    )
    results["usl"] = np.vstack([fit_usl(SMALL_SCALES, s)(p_large) for s in S_hold])

    scores = {}
    for name, pred in results.items():
        scores[name] = [
            mape(Y_true[:, j], np.maximum(pred[:, j], 1e-12))
            for j in range(len(LARGE_SCALES))
        ]
    return scores


def test_extC_known_config_scalability(benchmark, stencil_histories):
    scores = benchmark.pedantic(
        lambda: _run(stencil_histories), rounds=1, iterations=1
    )
    rows = [
        [name]
        + [format_percent(v) for v in values]
        + [format_percent(float(np.mean(values)))]
        for name, values in sorted(scores.items(), key=lambda kv: np.mean(kv[1]))
    ]
    report(
        ascii_table(
            ["method"] + [f"p={s}" for s in LARGE_SCALES] + ["overall"],
            rows,
            title="Extension C (stencil3d) — known-config extrapolation MAPE",
        )
    )
    ours = float(np.mean(scores["clustered multitask (ours)"]))
    # Honest reproduction note (EXPERIMENTS.md): stencil curves are
    # largely Amdahl-shaped, so the 2-parameter Amdahl law is a strong
    # prior here and can edge out the flexible methods.  Ours must beat
    # the USL (whose contention term misextrapolates) and match the
    # per-config Extra-P search it generalizes.
    assert ours < float(np.mean(scores["usl"]))
    assert ours < 1.1 * float(np.mean(scores["extra-p style (per config)"]))
