"""Extension H — history collection under a wall-clock budget.

Recollects the small-scale training history with the executor running
under an :class:`repro.sim.ExecutionBudget` (runs killed at the limit,
resubmitted with escalated budgets), then fits the two-level model on
the resulting partially-censored history.  Expected shape: the model
drops the censored rows (``censored_rows_dropped`` on the fit report),
degrades around any thinned scales, and large-scale accuracy recovers
toward the unbudgeted baseline as the limit loosens.

The limit is swept over quantiles of the true runtime distribution so
the censoring pressure is comparable across sizings.
"""

import numpy as np
from conftest import experiment_config, cached_histories, report

from repro.analysis import Histories, evaluate_predictor, fit_two_level, series_block
from repro.apps import get_app
from repro.data import HistoryGenerator
from repro.sim import ExecutionBudget, Executor, NoiseModel, RetryPolicy

LIMIT_QUANTILES = [0.5, 0.75, 0.9]
MAX_RETRIES = 2
ESCALATION = 1.5


def _budgeted_train(config, limit):
    """Recollect the training history with a per-run wall-clock limit."""
    app = get_app(config.app_name)
    noise = NoiseModel(sigma=config.noise_sigma, jitter_prob=config.jitter_prob)
    executor = Executor(
        noise=noise,
        seed=config.seed,
        budget=ExecutionBudget(limit=limit),
        retry=RetryPolicy(max_attempts=MAX_RETRIES + 1, escalation=ESCALATION),
    )
    gen = HistoryGenerator(app, executor=executor, seed=config.seed)
    configs = gen.sample_configs(config.n_train_configs)
    train = gen.collect(configs, config.small_scales,
                        repetitions=config.repetitions)
    return train, gen.timeout_log


def _mape_with(histories, train):
    model = fit_two_level(
        Histories(train=train, test=histories.test, config=histories.config)
    )
    score = evaluate_predictor(
        "two-level",
        lambda X, s, m=model: m.predict(X, [s])[:, 0],
        histories.test,
        histories.config.large_scales,
    )
    return 100.0 * score.overall_mape


def _sweep():
    histories = cached_histories(experiment_config("stencil3d"))
    baseline = _mape_with(histories, histories.train)
    mapes, censored, resubmitted = [], [], []
    for q in LIMIT_QUANTILES:
        limit = float(np.quantile(histories.train.runtime, q))
        train, log = _budgeted_train(histories.config, limit)
        mapes.append(_mape_with(histories, train))
        censored.append(log.censored)
        resubmitted.append(log.resubmitted)
    return baseline, mapes, censored, resubmitted


def test_extH_budget_retry(benchmark):
    baseline, mapes, censored, resubmitted = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    report(
        series_block(
            "Extension H (stencil3d) — overall MAPE [%] vs wall-clock "
            f"limit quantile (retries={MAX_RETRIES}, "
            f"escalation={ESCALATION}; unbudgeted baseline "
            f"{baseline:.1f} %)",
            "limit q",
            LIMIT_QUANTILES,
            {
                "budgeted": mapes,
                "censored rows": [float(c) for c in censored],
                "resubmitted": [float(r) for r in resubmitted],
            },
            y_format="{:.1f}",
        )
    )
    # Tighter limits censor more runs; resubmission recovers some.
    assert censored[0] >= censored[-1]
    assert all(r > 0 for r in resubmitted)
    # The pipeline completes at every limit, and once 90 % of runs fit
    # inside the budget accuracy is within 2x the unbudgeted baseline.
    assert all(np.isfinite(m) for m in mapes)
    assert mapes[-1] <= 2.0 * max(baseline, 5.0)
