"""Extension F — structured (non-i.i.d.) noise from load imbalance.

The paper's noise story assumes run-to-run variability; real histories
also carry *structured* noise: per-rank load imbalance whose cost grows
with synchronization frequency and scale.  This experiment generates
the training history with the per-rank :class:`DetailedExecutor`
(static imbalance + stragglers) and evaluates against test data from
the same process, comparing the two-level model to representative
baselines.

Expected shape: imbalance inflates runtimes scale-dependently (it acts
like a systematic, learnable effect, not noise), so the two-level model
should degrade only moderately relative to the i.i.d.-noise Table 2 and
keep its ordering against the non-extrapolating baselines.
"""

from conftest import LARGE_SCALES, SIZING, SMALL_SCALES, report

from repro.analysis import ascii_table, evaluate_predictor, format_percent
from repro.apps import get_app
from repro.baselines import make_baseline
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator
from repro.sim import DetailedExecutor, LoadImbalanceModel

BASELINES = ["direct-rf", "direct-lasso", "direct-mlp"]

IMBALANCE = LoadImbalanceModel(
    static_sigma=0.05, dynamic_sigma=0.02, straggler_prob=0.005,
    straggler_factor=1.5,
)


def _run():
    n_train, n_test, reps = SIZING
    app = get_app("stencil3d")
    executor = DetailedExecutor(imbalance=IMBALANCE, seed=42)
    gen = HistoryGenerator(app, executor=executor, seed=42)
    train = gen.collect(gen.sample_configs(n_train), SMALL_SCALES,
                        repetitions=reps)
    test = gen.collect(gen.sample_configs(n_test), LARGE_SCALES,
                       repetitions=1)

    scores = []
    model = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                          random_state=42).fit(train)
    scores.append(
        evaluate_predictor(
            "two-level",
            lambda X, s: model.predict(X, [s])[:, 0],
            test,
            LARGE_SCALES,
        )
    )
    for name in BASELINES:
        bl = make_baseline(name, seed=42).fit(train)
        scores.append(
            evaluate_predictor(
                name, lambda X, s, b=bl: b.predict(X, s), test, LARGE_SCALES
            )
        )
    scores.sort(key=lambda r: r.overall_mape)
    return scores


def test_extF_load_imbalance(benchmark):
    scores = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [r.name]
        + [format_percent(r.mape_by_scale[s]) for s in LARGE_SCALES]
        + [format_percent(r.overall_mape)]
        for r in scores
    ]
    report(
        ascii_table(
            ["method"] + [f"p={s}" for s in LARGE_SCALES] + ["overall"],
            rows,
            title="Extension F (stencil3d) — per-rank load-imbalance "
            "histories, MAPE",
        )
    )
    by_name = {r.name: r.overall_mape for r in scores}
    assert by_name["two-level"] < by_name["direct-rf"]
    assert by_name["two-level"] < 1.5  # no blowup under structured noise
