"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the reproduced
paper's evaluation (see DESIGN.md's per-experiment index).  Histories
are simulated once per session and cached; each benchmark prints its
table/series to stdout AND appends it to ``results/benchmark_report.txt``
so the output survives pytest's capture.

Set ``REPRO_BENCH_SCALE=full`` for paper-sized runs (slower); the
default "quick" sizing preserves every qualitative conclusion at a
fraction of the cost.

To diagnose slow sweeps, run with ``-v`` (or ``REPRO_BENCH_VERBOSE=1``)
— the harness then turns on the library's debug logging and times every
history build, so the expensive phase (simulation vs fitting) is
visible per benchmark.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.analysis import ExperimentConfig, Histories, build_histories
from repro.log import configure_logging, get_logger

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"

logger = get_logger("bench.harness")


def pytest_configure(config) -> None:
    """Wire pytest verbosity into the library's debug logging."""
    if config.option.verbose > 0 or os.environ.get("REPRO_BENCH_VERBOSE"):
        configure_logging(verbose=True)
        logger.debug(
            "benchmark harness: scale=%s sizing=%s small=%s large=%s",
            "full" if FULL else "quick", SIZING, SMALL_SCALES, LARGE_SCALES,
        )

#: Experiment sizing: (n_train, n_test, repetitions).
SIZING = (150, 50, 3) if FULL else (80, 30, 2)

SMALL_SCALES = (32, 64, 128, 256, 512)
LARGE_SCALES = (1024, 2048, 4096)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def experiment_config(app_name: str, **overrides) -> ExperimentConfig:
    n_train, n_test, reps = SIZING
    base = ExperimentConfig(
        app_name=app_name,
        small_scales=SMALL_SCALES,
        large_scales=LARGE_SCALES,
        n_train_configs=n_train,
        n_test_configs=n_test,
        repetitions=reps,
        seed=42,
        n_clusters=3,
    )
    return base.with_(**overrides) if overrides else base


_HISTORY_CACHE: dict[ExperimentConfig, Histories] = {}


def cached_histories(config: ExperimentConfig) -> Histories:
    """Build (or reuse) the simulated histories for a config."""
    if config not in _HISTORY_CACHE:
        logger.debug("building histories for %s ...", config.app_name)
        start = time.perf_counter()
        histories = build_histories(config)
        logger.debug(
            "histories for %s built in %.2fs (train=%d rows, test=%d rows)",
            config.app_name,
            time.perf_counter() - start,
            len(histories.train),
            len(histories.test),
        )
        _HISTORY_CACHE[config] = histories
    else:
        logger.debug("history cache hit for %s", config.app_name)
    return _HISTORY_CACHE[config]


def report(text: str) -> None:
    """Print a table/series and persist it to the results file."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "benchmark_report.txt", "a") as fh:
        fh.write(text + "\n\n")


@pytest.fixture(scope="session")
def stencil_histories() -> Histories:
    return cached_histories(experiment_config("stencil3d"))


@pytest.fixture(scope="session")
def nbody_histories() -> Histories:
    return cached_histories(experiment_config("nbody"))
