"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the reproduced
paper's evaluation (see DESIGN.md's per-experiment index).  Histories
are simulated once per session and cached; each benchmark prints its
table/series to stdout AND appends it to ``results/benchmark_report.txt``
so the output survives pytest's capture.

Set ``REPRO_BENCH_SCALE=full`` for paper-sized runs (slower); the
default "quick" sizing preserves every qualitative conclusion at a
fraction of the cost.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import ExperimentConfig, Histories, build_histories

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"

#: Experiment sizing: (n_train, n_test, repetitions).
SIZING = (150, 50, 3) if FULL else (80, 30, 2)

SMALL_SCALES = (32, 64, 128, 256, 512)
LARGE_SCALES = (1024, 2048, 4096)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def experiment_config(app_name: str, **overrides) -> ExperimentConfig:
    n_train, n_test, reps = SIZING
    base = ExperimentConfig(
        app_name=app_name,
        small_scales=SMALL_SCALES,
        large_scales=LARGE_SCALES,
        n_train_configs=n_train,
        n_test_configs=n_test,
        repetitions=reps,
        seed=42,
        n_clusters=3,
    )
    return base.with_(**overrides) if overrides else base


_HISTORY_CACHE: dict[ExperimentConfig, Histories] = {}


def cached_histories(config: ExperimentConfig) -> Histories:
    """Build (or reuse) the simulated histories for a config."""
    if config not in _HISTORY_CACHE:
        _HISTORY_CACHE[config] = build_histories(config)
    return _HISTORY_CACHE[config]


def report(text: str) -> None:
    """Print a table/series and persist it to the results file."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "benchmark_report.txt", "a") as fh:
        fh.write(text + "\n\n")


@pytest.fixture(scope="session")
def stencil_histories() -> Histories:
    return cached_histories(experiment_config("stencil3d"))


@pytest.fixture(scope="session")
def nbody_histories() -> Histories:
    return cached_histories(experiment_config("nbody"))
