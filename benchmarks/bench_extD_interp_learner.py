"""Extension D — interpolation-learner ablation.

The paper fixes random forests at the interpolation level.  This
experiment swaps the level-1 learner (forest / gradient boosting /
kernel ridge on log parameters) while keeping the extrapolation level
fixed, and reports both the level-1 CV error and the end-to-end
large-scale error.

Expected shape: end-to-end accuracy tracks interpolation accuracy
almost monotonically — the extrapolation level amplifies level-1 noise,
so a smoother interpolator (kernel ridge, exploiting the multiplicative
structure of runtime responses) buys a large end-to-end improvement
over the paper's forest.
"""

import numpy as np
from conftest import LARGE_SCALES, report

from repro.analysis import ascii_table, evaluate_predictor, fit_two_level, format_percent
from repro.core import INTERPOLATION_FACTORIES


def _run(histories):
    rows = []
    for name, factory in INTERPOLATION_FACTORIES.items():
        model = fit_two_level(histories, interp_factory=factory)
        cv = model.interpolation_cv_mape(n_splits=5)
        score = evaluate_predictor(
            name,
            lambda X, s, m=model: m.predict(X, [s])[:, 0],
            histories.test,
            histories.config.large_scales,
        )
        rows.append((name, float(np.mean(list(cv.values()))), score))
    return rows


def test_extD_interpolation_learner(benchmark, stencil_histories):
    rows = benchmark.pedantic(
        lambda: _run(stencil_histories), rounds=1, iterations=1
    )
    table_rows = [
        [name, format_percent(cv)]
        + [format_percent(score.mape_by_scale[s]) for s in LARGE_SCALES]
        + [format_percent(score.overall_mape)]
        for name, cv, score in sorted(rows, key=lambda r: r[2].overall_mape)
    ]
    report(
        ascii_table(
            ["level-1 learner", "interp CV"]
            + [f"p={s}" for s in LARGE_SCALES]
            + ["overall"],
            table_rows,
            title="Extension D (stencil3d) — interpolation-learner ablation",
        )
    )
    by_name = {name: (cv, score) for name, cv, score in rows}
    # The best interpolator end-to-end must also be (near-)best at CV:
    best_e2e = min(rows, key=lambda r: r[2].overall_mape)
    best_cv = min(rows, key=lambda r: r[1])
    assert best_e2e[1] <= 1.5 * best_cv[1]
    # Kernel ridge must beat the paper's forest at level 1 on this
    # smooth-response application.
    assert by_name["kernel-ridge"][0] < by_name["random-forest"][0]
