"""Extension N — scheduler intelligence.

Three measurements over the ``repro.sched`` stack:

* **wait-model accuracy** — a :class:`WaitTimePredictor` fit on probes
  of one background trace, evaluated on held-out probes of the same
  trace, against the obvious baseline a site dashboard would use: the
  mean historical wait per queue-depth bin.  Reported as MAPE over the
  held-out probes that actually waited (>60 s; MAPE is undefined at
  zero wait) plus log-space MAE over all of them.
* **what-if latency** — a full ``WhatIfPlanner.evaluate`` sweep (packed
  runtime pipeline + wait-model point and p90 predictions + frontier +
  recommendation), the exact work a ``POST /whatif`` does after JSON
  parsing.  Bar: p50 under 5 ms.
* **waste-report streaming** — a 1M-row store aggregated with
  :meth:`WasteReport.add_store`; peak RSS growth must stay bounded
  (O(chunk), not O(rows)).

Acceptance bars: the wait model beats the per-depth baseline on MAPE,
what-if p50 <= 5 ms, waste-report RSS growth under 300 MB.
"""

import resource
import time

import numpy as np
from conftest import cached_histories, experiment_config, report

from repro.analysis import fit_two_level, series_block
from repro.data import ExecutionDataset
from repro.sched import (
    QueueConfig,
    QueueSimulator,
    WaitTimePredictor,
    WasteReport,
    WhatIfPlanner,
)
from repro.store import HistoryStore

#: ~70% utilization: most probes wait, a few start at once.
QUEUE = QueueConfig(n_nodes=256, arrival_rate=0.004, horizon=2 * 86400.0, seed=7)
PROBE_NODES = (1, 256)
N_TRAIN, N_TEST = 1200, 400
WAITED = 60.0  # seconds; below this a probe counts as "started at once"


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _mape(pred, true):
    return float(np.mean(np.abs(pred - true) / true) * 100.0)


def _wait_accuracy():
    sim = QueueSimulator(QUEUE)
    train = sim.sample_observations(N_TRAIN, seed=1, nodes_range=PROBE_NODES)
    test = sim.sample_observations(N_TEST, seed=2, nodes_range=PROBE_NODES)

    model = WaitTimePredictor(n_estimators=64, random_state=0).fit(
        [o.features() for o in train],
        [o.wait_seconds for o in train],
    )
    pred = model.predict([o.features() for o in test])

    # Baseline: mean historical wait per queue-depth bin (log-spaced
    # bins; a depth-42 queue should look like other deep queues).
    depth_tr = np.array([o.queue_depth for o in train], dtype=np.float64)
    depth_te = np.array([o.queue_depth for o in test], dtype=np.float64)
    wait_tr = np.array([o.wait_seconds for o in train])
    wait_te = np.array([o.wait_seconds for o in test])
    edges = np.unique(
        np.round(np.geomspace(1, depth_tr.max() + 1, 12))
    )
    bin_tr = np.digitize(depth_tr, edges)
    bin_te = np.digitize(depth_te, edges)
    fallback = wait_tr.mean()
    per_bin = {
        b: wait_tr[bin_tr == b].mean() for b in np.unique(bin_tr)
    }
    baseline = np.array([per_bin.get(b, fallback) for b in bin_te])

    waited = wait_te > WAITED
    model_mape = _mape(pred[waited], wait_te[waited])
    base_mape = _mape(baseline[waited], wait_te[waited])
    model_lmae = float(np.mean(np.abs(np.log1p(pred) - np.log1p(wait_te))))
    base_lmae = float(
        np.mean(np.abs(np.log1p(baseline) - np.log1p(wait_te)))
    )
    return model, model_mape, base_mape, model_lmae, base_lmae, int(
        waited.sum()
    )


def test_extN_wait_model_accuracy(benchmark):
    _, model_mape, base_mape, model_lmae, base_lmae, n_waited = (
        benchmark.pedantic(_wait_accuracy, rounds=1, iterations=1)
    )
    report(
        series_block(
            "Extension N — wait-time prediction vs per-depth baseline "
            f"[{N_TRAIN} train / {N_TEST} held-out probes; MAPE over the "
            f"{n_waited} probes that waited >{WAITED:.0f}s]",
            "metric",
            ["wait-model MAPE", "per-depth MAPE", "wait-model logMAE",
             "per-depth logMAE"],
            {
                "value": [model_mape, base_mape, model_lmae, base_lmae],
            },
            y_format="{:.2f}",
        )
    )
    assert model_mape < base_mape, (
        f"wait model MAPE {model_mape:.1f}% does not beat the per-depth "
        f"baseline {base_mape:.1f}%"
    )
    assert model_lmae < base_lmae


def _whatif_latency():
    histories = cached_histories(experiment_config("stencil3d"))
    model = fit_two_level(histories)
    packed = model.pack()
    sim = QueueSimulator(QUEUE)
    train = sim.sample_observations(600, seed=1, nodes_range=PROBE_NODES)
    wait_model = WaitTimePredictor(n_estimators=32, random_state=0).fit(
        [o.features() for o in train],
        [o.wait_seconds for o in train],
    )
    x1 = np.ascontiguousarray(
        histories.test.unique_configs().astype(float)[:1]
    )
    scales = list(model.small_scales) + [1024, 2048, 4096]
    state = train[0].features()
    planner = WhatIfPlanner(
        lambda x, sv: packed.predict(x.reshape(1, -1), list(sv))[0],
        wait_model=wait_model,
    )

    # Warm once (first call pays numpy allocator setup), then time.
    planner.evaluate(x1[0], scales, queue_state=state, deadline=1e9)
    samples = []
    for _ in range(200):
        t0 = time.perf_counter()
        planner.evaluate(x1[0], scales, queue_state=state, deadline=1e9)
        samples.append(time.perf_counter() - t0)
    return float(np.percentile(np.asarray(samples) * 1e3, 50)), len(scales)


def test_extN_whatif_latency(benchmark):
    p50_ms, k = benchmark.pedantic(_whatif_latency, rounds=1, iterations=1)
    report(
        series_block(
            f"Extension N — what-if sweep latency [{k} candidate scales, "
            "packed runtime path + wait model p50/p90; p50 over 200 reps]",
            "metric",
            ["evaluate p50 [ms]"],
            {"value": [p50_ms]},
            y_format="{:.2f}",
        )
    )
    assert p50_ms <= 5.0, (
        f"what-if p50 {p50_ms:.2f} ms exceeds the 5 ms bar"
    )


def _million_row_store(root, n_rows=1_000_000, chunk=100_000):
    scales = np.array([32, 64, 128, 256, 512, 1024])
    rng = np.random.default_rng(0)
    store = HistoryStore.create(root, app_name="synth", param_names=["a", "b"])
    written = 0
    while written < n_rows:
        m = min(chunk, n_rows - written)
        nprocs = rng.choice(scales, m)
        runtime = rng.lognormal(5.0, 1.0, m)
        store.append(
            ExecutionDataset(
                app_name="synth",
                param_names=("a", "b"),
                X=rng.uniform(1.0, 10.0, (m, 2)),
                nprocs=nprocs.astype(np.int64),
                runtime=runtime,
                model_runtime=runtime,
                wait_seconds=rng.exponential(120.0, m),
            )
        )
        written += m
    return store


def _waste_streaming(tmp_path):
    store = _million_row_store(tmp_path / "store")
    rss0 = _rss_mb()
    t0 = time.perf_counter()
    rep = WasteReport().add_store(store, time_limit=1200.0, chunk_rows=65536)
    dt = time.perf_counter() - t0
    return rep, dt, _rss_mb() - rss0


def test_extN_waste_streaming_memory(benchmark, tmp_path):
    rep, dt, rss_growth = benchmark.pedantic(
        _waste_streaming, args=(tmp_path,), rounds=1, iterations=1
    )
    totals = rep.totals()
    n = int(totals["runs"])
    report(
        series_block(
            "Extension N — 1M-row streaming waste report "
            f"[{n} rows in {dt:.1f}s; chunk 65536]",
            "metric",
            ["rows/s [k]", "RSS growth [MB]", "waste fraction [%]"],
            {
                "value": [
                    n / dt / 1e3,
                    rss_growth,
                    totals["waste_fraction"] * 100.0,
                ]
            },
            y_format="{:.1f}",
        )
    )
    assert n == 1_000_000
    assert totals["censored_runs"] > 0  # the limit actually bit
    assert rss_growth < 300, (
        f"RSS grew {rss_growth:.0f} MB over a 1M-row stream — not O(chunk)"
    )
