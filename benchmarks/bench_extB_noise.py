"""Extension B — robustness to run-to-run noise.

Sweeps the simulator's multiplicative noise level and measures the
two-level model's accuracy.  Expected shape: graceful degradation — the
multitask selection is designed to damp exactly this noise, so accuracy
should not fall off a cliff until noise rivals the signal.
"""

from conftest import experiment_config, cached_histories, report

from repro.analysis import evaluate_predictor, fit_two_level, series_block

NOISE_LEVELS = [0.0, 0.03, 0.08, 0.15]


def _sweep():
    values = []
    for sigma in NOISE_LEVELS:
        cfg = experiment_config(
            "stencil3d", noise_sigma=sigma,
            jitter_prob=0.0 if sigma == 0.0 else 0.05,
        )
        histories = cached_histories(cfg)
        model = fit_two_level(histories)
        score = evaluate_predictor(
            f"sigma={sigma}",
            lambda X, s, m=model: m.predict(X, [s])[:, 0],
            histories.test,
            cfg.large_scales,
        )
        values.append(100.0 * score.overall_mape)
    return values


def test_extB_noise_robustness(benchmark):
    values = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        series_block(
            "Extension B (stencil3d) — overall MAPE [%] vs noise sigma",
            "sigma",
            NOISE_LEVELS,
            {"two-level": values},
            y_format="{:.1f}",
        )
    )
    # Graceful degradation: 15 % noise should cost < 3x the noise-free
    # error, and even then stay under 150 % MAPE.
    assert values[-1] < 3.0 * max(values[0], 10.0)
    assert values[-1] < 150.0
