"""Figure 4 — sensitivity to which small scales the history contains.

Sweeps the training-scale set: fewer scales (prefixes) and a shifted,
closer-to-target window.  Expected shape: accuracy improves as the
largest training scale approaches the prediction targets (smaller
extrapolation ratio), and collapses when only 2-3 distant scales exist.
"""

from conftest import experiment_config, cached_histories, report

from repro.analysis import evaluate_predictor, fit_two_level, series_block

SCALE_SETS = [
    (32, 64, 128),
    (32, 64, 128, 256),
    (32, 64, 128, 256, 512),
    (64, 128, 256, 512),
    (128, 256, 512),
]


def _sweep():
    labels, values = [], []
    for scales in SCALE_SETS:
        cfg = experiment_config("stencil3d", small_scales=scales)
        histories = cached_histories(cfg)
        model = fit_two_level(histories)
        score = evaluate_predictor(
            str(scales),
            lambda X, s, m=model: m.predict(X, [s])[:, 0],
            histories.test,
            cfg.large_scales,
        )
        labels.append("{" + ",".join(map(str, scales)) + "}")
        values.append(100.0 * score.overall_mape)
    return labels, values


def test_fig4_small_scale_sets(benchmark):
    labels, values = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        series_block(
            "Figure 4 (stencil3d) — overall MAPE [%] vs training-scale set "
            "(targets 1024-4096)",
            "scale set",
            labels,
            {"two-level": values},
            y_format="{:.1f}",
        )
    )
    by_label = dict(zip(labels, values))
    # Robust orientation check: with the same top scale (512), five
    # scales must beat the three-scale window {128,256,512}, whose short
    # internal-validation horizon cannot vet candidate supports.
    assert by_label["{32,64,128,256,512}"] < by_label["{128,256,512}"]
    # And no full-width scale set may blow up catastrophically.
    assert by_label["{32,64,128,256,512}"] < 150.0
