"""Extension L — crash recovery and overload shedding.

Two robustness costs are measured:

* **store recovery** — a 100k-row history store is damaged with N
  faults (bit flips, truncation, garbage, an orphaned tmp dir) and
  healed with ``HistoryStore.fsck()``; reported numbers are the fsck
  wall time (clean vs damaged) and the rows retained.  The acceptance
  bar: fsck quarantines exactly the damaged shards — every intact row
  survives and ``verify()`` passes afterwards.
* **overload shedding** — the HTTP server is hammered by a thread pool
  far above its configured token-bucket rate, against a baseline run
  with no limiter.  Reported numbers are the served (HTTP 200) latency
  p50/p99 and the rejected (HTTP 429) p50.  The acceptance bar: a 429
  is much cheaper than a served prediction (rejects shed load instead
  of queueing), and the limiter actually sheds under overload.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from conftest import cached_histories, experiment_config, report

from repro.analysis import fit_two_level, series_block
from repro.chaos import corrupt_file
from repro.data import ExecutionDataset
from repro.serve import ModelArtifact, ModelRegistry, create_server
from repro.store import HistoryStore

ROWS = 100_000
N_SHARDS = 10
N_FAULTS = 5  # shards damaged (out of N_SHARDS)

CLIENTS = 8
REQUESTS_PER_CLIENT = 25
OVERLOAD_RATE = 20.0  # tokens/s, far below the offered load
OVERLOAD_BURST = 10


def _chunk(n_rows: int, seed: int) -> ExecutionDataset:
    scales = (8, 16, 32)
    rng = np.random.default_rng(seed)
    configs = rng.uniform(1.0, 10.0, size=(n_rows // len(scales), 2))
    X = np.repeat(configs, len(scales), axis=0)
    nprocs = np.tile(np.asarray(scales, dtype=np.int64), len(configs))
    runtime = 100.0 / nprocs + X[:, 0] * 0.5 + rng.uniform(0.01, 0.1, len(nprocs))
    return ExecutionDataset(
        app_name="synth",
        param_names=("alpha", "beta"),
        X=X,
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime * 0.97,
        rep=np.zeros(len(nprocs), dtype=np.int64),
    )


def _recovery_sweep(root):
    store = HistoryStore.create(root / "store", "synth", ("alpha", "beta"))
    for i in range(N_SHARDS):
        store.append(_chunk(ROWS // N_SHARDS, seed=i), source=f"chunk-{i}")
    rows_before = store.n_rows

    t0 = time.perf_counter()
    clean = store.fsck(repair=True)
    t_clean = time.perf_counter() - t0
    assert clean.clean

    shards = sorted(p.name for p in (store.root / "shards").iterdir())
    faults = [
        (shards[1], "bitflip", 1),
        (shards[3], "bitflip", 4),
        (shards[5], "truncate", 4096),
        (shards[7], "garbage", 256),
        (shards[9], "bitflip", 1),
    ]
    for name, mode, amount in faults:
        corrupt_file(
            store.root / "shards" / name / "runtime.npy",
            mode=mode, amount=amount, seed=1,
        )
    (store.root / "shards" / ".tmp-shard-junk").mkdir()

    t0 = time.perf_counter()
    damaged = HistoryStore.open(store.root).fsck(repair=True)
    t_repair = time.perf_counter() - t0

    healed = HistoryStore.open(store.root)
    healed.verify()
    assert len(damaged.quarantined) == N_FAULTS, damaged.damaged
    assert healed.n_rows == damaged.rows_retained
    assert healed.n_rows == rows_before - N_FAULTS * (ROWS // N_SHARDS // 3 * 3)
    return rows_before, healed.n_rows, t_clean, t_repair


def test_extL_store_recovery(benchmark, tmp_path):
    rows_before, rows_after, t_clean, t_repair = benchmark.pedantic(
        _recovery_sweep, args=(tmp_path,), rounds=1, iterations=1
    )
    report(
        series_block(
            f"Extension L (synth) — fsck recovery of a {rows_before}-row "
            f"store, {N_FAULTS} of {N_SHARDS} shards damaged "
            f"({rows_after} rows retained)",
            "pass",
            ["fsck-clean", "fsck-repair"],
            {"wall [ms]": [t_clean * 1e3, t_repair * 1e3]},
            y_format="{:.1f}",
        )
    )


def _percentiles_ms(samples, qs=(50, 99)):
    return [float(np.percentile(np.asarray(samples) * 1e3, q)) for q in qs]


def _hammer(server, request):
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}/predict"
    data = json.dumps(request).encode()

    def one():
        req = urllib.request.Request(
            url, data=data, headers={"Content-Type": "application/json"},
            method="POST",
        )
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                status = resp.status
                resp.read()
        except urllib.error.HTTPError as exc:
            status = exc.code
            exc.read()
        return status, time.perf_counter() - t0

    def client(_):
        return [one() for _ in range(REQUESTS_PER_CLIENT)]

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        results = [r for batch in pool.map(client, range(CLIENTS)) for r in batch]
    return (
        [dt for status, dt in results if status == 200],
        [dt for status, dt in results if status == 429],
    )


def _overload_sweep(root):
    histories = cached_histories(experiment_config("stencil3d"))
    artifact = ModelArtifact.create(
        fit_two_level(histories),
        app_name=histories.train.app_name,
        param_names=histories.train.param_names,
        train=histories.train,
    )
    registry = ModelRegistry(root / "registry")
    registry.register("bench", artifact)
    request = {
        "params": dict(
            zip(histories.train.param_names, histories.test.X[0])
        ),
        "scales": [1024, 2048],
    }

    out = {}
    for label, kwargs in (
        ("baseline", {}),
        ("limited", {"rate": OVERLOAD_RATE, "burst": OVERLOAD_BURST}),
    ):
        server = create_server(registry, port=0, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            out[label] = _hammer(server, request)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    return out


def test_extL_overload_shedding(benchmark, tmp_path):
    out = benchmark.pedantic(
        _overload_sweep, args=(tmp_path,), rounds=1, iterations=1
    )
    base_ok, base_shed = out["baseline"]
    lim_ok, lim_shed = out["limited"]
    total = CLIENTS * REQUESTS_PER_CLIENT
    base_p50, base_p99 = _percentiles_ms(base_ok)
    lim_p50, lim_p99 = _percentiles_ms(lim_ok)
    shed_p50, _ = _percentiles_ms(lim_shed)
    report(
        series_block(
            f"Extension L (stencil3d) — /predict under overload "
            f"({CLIENTS} clients x {REQUESTS_PER_CLIENT} requests; "
            f"limiter {OVERLOAD_RATE:g}/s burst {OVERLOAD_BURST}; "
            f"limited run served {len(lim_ok)}, shed {len(lim_shed)} "
            f"of {total})",
            "regime",
            ["baseline-p50", "baseline-p99", "limited-p50", "limited-p99",
             "rejected-p50"],
            {"latency [ms]": [base_p50, base_p99, lim_p50, lim_p99, shed_p50]},
            y_format="{:.2f}",
        )
    )
    assert not base_shed  # no limiter -> nothing is ever shed
    # under ~8x overload the limiter must shed most of the offered load
    assert len(lim_shed) > total // 3, f"only {len(lim_shed)} of {total} shed"
    # and a reject must be cheaper than a served prediction: the 429
    # path does no model work (the remaining cost is HTTP plumbing)
    assert shed_p50 < lim_p50, (shed_p50, lim_p50)
