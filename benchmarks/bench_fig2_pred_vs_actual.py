"""Figure 2 — predicted vs actual runtime at the largest scale.

The scatter-plot figure: for every test configuration at the largest
target scale, the predicted and measured runtimes.  The printed series
carries the raw pairs (sorted by actual runtime) plus summary statistics
(log-space correlation, fraction within 1.5x), which is what the visual
scatter communicates.
"""

import numpy as np
from conftest import report

from repro.analysis import ascii_table, fit_two_level


def test_fig2_pred_vs_actual(benchmark, stencil_histories, nbody_histories):
    model_s = benchmark.pedantic(
        lambda: fit_two_level(stencil_histories), rounds=1, iterations=1
    )
    model_n = fit_two_level(nbody_histories)

    rows = []
    stats_rows = []
    checks = []
    for label, model, hist in [
        ("stencil3d", model_s, stencil_histories),
        ("nbody", model_n, nbody_histories),
    ]:
        p_max = max(hist.config.large_scales)
        sub = hist.test.at_scale(p_max)
        pred = model.predict(sub.X, [p_max])[:, 0]
        order = np.argsort(sub.runtime)
        for i in order[:: max(1, len(order) // 10)]:
            rows.append(
                [label, p_max, f"{sub.runtime[i]:.4g}", f"{pred[i]:.4g}",
                 f"{pred[i] / sub.runtime[i]:.2f}x"]
            )
        log_corr = float(
            np.corrcoef(np.log(sub.runtime), np.log(pred))[0, 1]
        )
        worst_ratio = np.maximum(pred / sub.runtime, sub.runtime / pred)
        within15 = float(np.mean(worst_ratio < 1.5))
        within2 = float(np.mean(worst_ratio < 2.0))
        stats_rows.append(
            [label, p_max, f"{log_corr:.3f}", f"{100 * within15:.0f}%",
             f"{100 * within2:.0f}%"]
        )
        checks.append((label, log_corr, within2))

    report(
        ascii_table(
            ["app", "p", "actual [s]", "predicted [s]", "ratio"],
            rows,
            title="Figure 2 — predicted vs actual at the largest scale "
            "(every ~10th test config)",
        )
    )
    report(
        ascii_table(
            ["app", "p", "log-corr", "within 1.5x", "within 2x"],
            stats_rows,
            title="Figure 2 summary statistics",
        )
    )
    for label, log_corr, within2 in checks:
        # Quick-scale forest interpolation leaves visible scatter at an
        # 8x extrapolation; the prediction must still track the truth in
        # rank (log correlation) and land within 2x for a fair share of
        # configurations.
        assert log_corr > 0.75, (label, log_corr)
        assert within2 > 0.25, (label, within2)
