"""Figure 5 — sensitivity to training-set size.

Sweeps the number of history configurations.  Expected shape: error
falls steeply at first (the interpolation forests need coverage of the
parameter space) and then saturates — the residual error is
extrapolation-intrinsic, not data-starvation.
"""

from conftest import experiment_config, cached_histories, report

from repro.analysis import evaluate_predictor, fit_two_level, series_block

TRAIN_SIZES = [20, 40, 80, 160]


def _sweep():
    values = []
    for n in TRAIN_SIZES:
        cfg = experiment_config("stencil3d", n_train_configs=n)
        histories = cached_histories(cfg)
        model = fit_two_level(histories)
        score = evaluate_predictor(
            f"n={n}",
            lambda X, s, m=model: m.predict(X, [s])[:, 0],
            histories.test,
            cfg.large_scales,
        )
        values.append(100.0 * score.overall_mape)
    return values


def test_fig5_train_size(benchmark):
    values = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report(
        series_block(
            "Figure 5 (stencil3d) — overall MAPE [%] vs number of training "
            "configurations",
            "n_train",
            TRAIN_SIZES,
            {"two-level": values},
            y_format="{:.1f}",
        )
    )
    # More data must not make things dramatically worse, and the largest
    # training set must beat the most starved one.
    assert values[-1] < values[0]
