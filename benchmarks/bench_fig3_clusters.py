"""Figure 3 — sensitivity to the number of curve-shape clusters.

Sweeps the extrapolation level's cluster count.  Expected shape: a
shallow optimum — one global model underfits heterogeneous curve
shapes, too many clusters starve the joint selection of tasks — with
stable accuracy in a broad middle band.
"""

from conftest import report

from repro.analysis import evaluate_predictor, fit_two_level, series_block

CLUSTER_COUNTS = [1, 2, 3, 5, 8]


def _sweep(histories):
    overall = []
    per_scale = {s: [] for s in histories.config.large_scales}
    for k in CLUSTER_COUNTS:
        model = fit_two_level(histories, n_clusters=k)
        score = evaluate_predictor(
            f"k={k}",
            lambda X, s, m=model: m.predict(X, [s])[:, 0],
            histories.test,
            histories.config.large_scales,
        )
        overall.append(100.0 * score.overall_mape)
        for s in per_scale:
            per_scale[s].append(100.0 * score.mape_by_scale[s])
    return overall, per_scale


def test_fig3_cluster_count(benchmark, stencil_histories):
    overall, per_scale = benchmark.pedantic(
        lambda: _sweep(stencil_histories), rounds=1, iterations=1
    )
    series = {"overall": overall}
    series.update({f"p={s}": v for s, v in per_scale.items()})
    report(
        series_block(
            "Figure 3 (stencil3d) — MAPE [%] vs number of clusters",
            "n_clusters",
            CLUSTER_COUNTS,
            series,
            y_format="{:.1f}",
        )
    )
    # Shallow-optimum shape: the spread across the sweep stays bounded
    # (no catastrophic cluster count), and every setting stays sane.
    assert max(overall) < 2.5 * min(overall)
    assert all(v < 150.0 for v in overall)
