"""Extension A — generality beyond the paper's two applications.

Runs the Table-2 protocol on the CG solver (allreduce-latency-bound)
and the 2-D FFT (alltoall-bandwidth-bound, non-monotone scaling).
These stress communication regimes the two primary applications do not,
probing whether the scalability basis generalizes.
"""

from conftest import LARGE_SCALES, experiment_config, cached_histories, report

from repro.analysis import ascii_table, format_percent, run_method_comparison

BASELINES = ["direct-rf", "direct-lasso", "direct-mlp", "direct-knn"]


def _run(app_name):
    histories = cached_histories(experiment_config(app_name))
    return run_method_comparison(histories, baselines=BASELINES)


def test_extA_cg(benchmark):
    results = benchmark.pedantic(lambda: _run("cg"), rounds=1, iterations=1)
    rows = [
        [r.name]
        + [format_percent(r.mape_by_scale[s]) for s in LARGE_SCALES]
        + [format_percent(r.overall_mape)]
        for r in results
    ]
    report(
        ascii_table(
            ["method"] + [f"p={s}" for s in LARGE_SCALES] + ["overall"],
            rows,
            title="Extension A (cg) — large-scale MAPE",
        )
    )
    by_name = {r.name: r.overall_mape for r in results}
    assert by_name["two-level"] < by_name["direct-rf"]


def test_extA_fft(benchmark):
    results = benchmark.pedantic(lambda: _run("fft2d"), rounds=1, iterations=1)
    rows = [
        [r.name]
        + [format_percent(r.mape_by_scale[s]) for s in LARGE_SCALES]
        + [format_percent(r.overall_mape)]
        for r in results
    ]
    report(
        ascii_table(
            ["method"] + [f"p={s}" for s in LARGE_SCALES] + ["overall"],
            rows,
            title="Extension A (fft2d) — large-scale MAPE",
        )
    )
    by_name = {r.name: r.overall_mape for r in results}
    assert by_name["two-level"] < by_name["direct-rf"]


def test_extA_wavefront(benchmark):
    results = benchmark.pedantic(
        lambda: _run("wavefront"), rounds=1, iterations=1
    )
    rows = [
        [r.name]
        + [format_percent(r.mape_by_scale[s]) for s in LARGE_SCALES]
        + [format_percent(r.overall_mape)]
        for r in results
    ]
    report(
        ascii_table(
            ["method"] + [f"p={s}" for s in LARGE_SCALES] + ["overall"],
            rows,
            title="Extension A (wavefront) — large-scale MAPE "
            "(pipeline-fill sqrt(p) scaling)",
        )
    )
    by_name = {r.name: r.overall_mape for r in results}
    assert by_name["two-level"] < by_name["direct-rf"]
