"""Table 2 — headline accuracy comparison (the paper's main claim).

For each of the two applications: MAPE of large-scale runtime
predictions, per target scale, for the two-level model vs every direct
"existing ML method" baseline trained on the same small-scale history.

Expected shape (abstract): the two-level model achieves higher accuracy
than the direct ML methods, with the gap widening at larger scales —
most dramatically against the methods that cannot extrapolate at all
(trees, kNN, kernel regressors).
"""

import pytest
from conftest import LARGE_SCALES, report

from repro.analysis import ascii_table, format_percent, run_method_comparison

#: Collected across the two app benchmarks, asserted in the summary test.
_RESULTS: dict[str, list] = {}


def _run(histories, benchmark, app_name):
    results = benchmark.pedantic(
        lambda: run_method_comparison(histories), rounds=1, iterations=1
    )
    _RESULTS[app_name] = results
    rows = [
        [r.name]
        + [format_percent(r.mape_by_scale[s]) for s in LARGE_SCALES]
        + [format_percent(r.overall_mape)]
        for r in results
    ]
    report(
        ascii_table(
            ["method"] + [f"p={s}" for s in LARGE_SCALES] + ["overall"],
            rows,
            title=f"Table 2 ({app_name}) — large-scale MAPE, lower is better",
        )
    )
    return results


def test_table2_stencil(benchmark, stencil_histories):
    results = _run(stencil_histories, benchmark, "stencil3d")
    assert results[0].overall_mape < 1.0  # sanity: winner under 100 %


def test_table2_nbody(benchmark, nbody_histories):
    results = _run(nbody_histories, benchmark, "nbody")
    assert results[0].overall_mape < 1.0


def test_table2_shape_holds(benchmark):
    """The paper's qualitative claim, checked programmatically.

    Takes the benchmark fixture (timing a no-op) so the assertions are
    NOT skipped under ``--benchmark-only``.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < 2:
        pytest.skip("run the two app benchmarks first")
    for app_name, results in _RESULTS.items():
        by_name = {r.name: r for r in results}
        two_level = by_name["two-level"]
        # The two-level model must beat every non-extrapolating learner
        # (trees/kNN/kernel), the class the paper's motivation targets.
        for rival in ["direct-rf", "direct-gbdt", "direct-knn", "direct-svr"]:
            assert two_level.overall_mape < by_name[rival].overall_mape, (
                app_name,
                rival,
            )
        # And it must be at worst competitive with the best baseline
        # overall.  (Honest reproduction note, recorded in
        # EXPERIMENTS.md: with the paper's forest interpolator the MLP
        # baseline is a near-tie on some seeds; swapping the level-1
        # learner — Extension D — restores a clear win.)
        best_baseline = min(
            (r for r in results if r.name != "two-level"),
            key=lambda r: r.overall_mape,
        )
        assert two_level.overall_mape < 1.6 * best_baseline.overall_mape, app_name
