"""Figure 6 — interpolation-level quality.

Per-scale cross-validated MAPE of the level-1 random forests, for both
applications.  This is the diagnostic that justifies the two-level
split: within the training scales the forest error is a few percent —
an order of magnitude below any direct method's *extrapolation* error —
so the overall error budget is dominated by level 2.
"""

from conftest import SMALL_SCALES, report

from repro.analysis import fit_two_level, series_block


def test_fig6_interpolation_quality(
    benchmark, stencil_histories, nbody_histories
):
    model_s = fit_two_level(stencil_histories)
    model_n = fit_two_level(nbody_histories)
    cv_s = benchmark.pedantic(
        lambda: model_s.interpolation_cv_mape(n_splits=5), rounds=1, iterations=1
    )
    cv_n = model_n.interpolation_cv_mape(n_splits=5)

    report(
        series_block(
            "Figure 6 — interpolation-level CV MAPE [%] per training scale",
            "p",
            list(SMALL_SCALES),
            {
                "stencil3d": [100.0 * cv_s[s] for s in SMALL_SCALES],
                "nbody": [100.0 * cv_n[s] for s in SMALL_SCALES],
            },
            y_format="{:.1f}",
        )
    )
    for cv in (cv_s, cv_n):
        for scale, err in cv.items():
            assert err < 0.35, (scale, err)
