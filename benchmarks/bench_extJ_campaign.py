"""Extension J — closed-loop collection campaigns vs passive baselines.

Runs the full :class:`repro.campaign.Campaign` loop (plan -> execute ->
sanitize -> refit -> register) three times under *identical* per-round
core-second budgets, varying only the bundle-selection strategy:

* ``planner`` — ensemble disagreement per core-second, censoring-aware
  (the campaign's point),
* ``random``  — uniform draws from the same candidate pool,
* ``grid``    — a full-factorial grid walked in order.

Because rounds are budget-bound on *actual charged* cost, every
strategy spends the same allocation per round; the benchmark therefore
compares what the core-hours bought, not how many were spent.  Expected
shape: all strategies improve on the seed-round model, and the planner
reaches a lower large-scale MAPE than random selection at equal spend.
"""

from conftest import FULL, report

from repro.analysis import series_block
from repro.campaign import Campaign, CampaignConfig

SELECTIONS = ("planner", "random", "grid")

CAMPAIGN = dict(
    app_name="stencil3d",
    allocation_core_seconds=40000.0,
    round_budget_core_seconds=600.0 if FULL else 300.0,
    small_scales=(32, 64, 128),
    eval_scales=(512,),
    max_rounds=4 if FULL else 3,
    n_seed_configs=6,
    bundles_per_round=64,
    n_candidates=120 if FULL else 60,
    n_eval_configs=24 if FULL else 12,
    time_limit=10.0,
    n_clusters=2,
    seed=3,
)


def _run_campaigns(root):
    reports = {}
    for selection in SELECTIONS:
        config = CampaignConfig(selection=selection, **CAMPAIGN)
        reports[selection] = Campaign(config, root / selection).run()
    return reports


def test_extJ_campaign(benchmark, tmp_path):
    reports = benchmark.pedantic(
        _run_campaigns, args=(tmp_path,), rounds=1, iterations=1
    )
    rounds = [r["round"] for r in reports["planner"].rounds]
    series = {}
    for selection in SELECTIONS:
        series[selection] = [
            100.0 * r["mape"] for r in reports[selection].rounds
        ]
    spent = {s: reports[s].ledger.spent for s in SELECTIONS}
    hours = ", ".join(f"{s} {spent[s] / 3600:.2f}" for s in SELECTIONS)
    report(
        series_block(
            "Extension J (stencil3d) — campaign MAPE [%] at p=512 vs "
            "collection round (equal core-second budget per round; "
            f"spent [core-hours]: {hours})",
            "round",
            rounds,
            series,
            y_format="{:.1f}",
        )
    )
    planner = reports["planner"]
    random = reports["random"]
    # Every strategy stays inside the allocation, attempts included.
    for rep in reports.values():
        assert rep.ledger.spent <= rep.ledger.allocation
    # Comparable spend: budget-bound rounds keep the strategies within
    # one bundle's actual cost of each other per round.
    assert max(spent.values()) <= 2.0 * min(spent.values())
    # The campaign improves on its own seed model...
    assert planner.mape_trajectory[-1] < planner.mape_trajectory[0]
    # ...and disagreement-guided collection beats random at equal spend.
    assert planner.mape_trajectory[-1] < random.mape_trajectory[-1]
