"""Micro-benchmarks of the substrate primitives.

Unlike the table/figure benchmarks (run once via ``pedantic``), these
use pytest-benchmark's statistical timing: they are the operations the
pipeline executes thousands of times, so their throughput governs the
wall-clock cost of every experiment above.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core import ClusteredScalingExtrapolator
from repro.ml import KMeans, Lasso, MultiTaskLasso, RandomForestRegressor
from repro.sim import Executor, NoiseModel


@pytest.fixture(scope="module")
def regression_problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 8))
    w = np.zeros(8)
    w[[0, 3, 5]] = [2.0, -1.0, 0.5]
    y = X @ w + 0.05 * rng.normal(size=400)
    return X, y


def test_bench_random_forest_fit(benchmark, regression_problem):
    X, y = regression_problem
    benchmark(
        lambda: RandomForestRegressor(n_estimators=30, random_state=0).fit(X, y)
    )


def test_bench_random_forest_predict(benchmark, regression_problem):
    X, y = regression_problem
    model = RandomForestRegressor(n_estimators=30, random_state=0).fit(X, y)
    benchmark(lambda: model.predict(X))


def test_bench_lasso_fit(benchmark, regression_problem):
    X, y = regression_problem
    benchmark(lambda: Lasso(alpha=0.05).fit(X, y))


def test_bench_multitask_lasso_fit(benchmark, regression_problem):
    X, y = regression_problem
    Y = np.column_stack([y, 2 * y, y - 1.0])
    benchmark(lambda: MultiTaskLasso(alpha=0.05).fit(X, Y))


def test_bench_kmeans_fit(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 5))
    benchmark(lambda: KMeans(n_clusters=4, n_init=3, random_state=0).fit(X))


def test_bench_executor_run(benchmark):
    app = get_app("stencil3d")
    ex = Executor(seed=0)
    params = {"nx": 256, "iterations": 200, "ghost": 2, "check_freq": 10}
    benchmark(lambda: ex.run(app, params, 1024))


def test_bench_executor_noise_free_model_time(benchmark):
    app = get_app("nbody")
    ex = Executor(noise=NoiseModel(sigma=0, jitter_prob=0), seed=0)
    params = {"n_particles": 1e5, "timesteps": 100, "cutoff": 3.0,
              "density": 0.8, "rebuild_every": 10}
    benchmark(lambda: ex.model_time(app, params, 2048))


def test_bench_extrapolator_fit(benchmark):
    rng = np.random.default_rng(0)
    scales = (32, 64, 128, 256, 512)
    p = np.asarray(scales, float)
    S = np.array(
        [rng.uniform(0.01, 0.1) + rng.uniform(5, 50) / p for _ in range(60)]
    )
    benchmark.pedantic(
        lambda: ClusteredScalingExtrapolator(
            scales, n_clusters=3, random_state=0
        ).fit(S),
        rounds=3,
        iterations=1,
    )
