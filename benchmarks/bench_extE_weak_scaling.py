"""Extension E — weak-scaling workloads.

Reruns the headline protocol on weakly-scaled applications (fixed
per-process problem share; ideal runtime is *flat* in p).  Weak-scaling
curves exercise the constant/log corner of the scalability basis that
strong-scaling curves barely touch, and in this regime the direct
baselines' inability to extrapolate matters far less — the expected
shape is a much smaller gap between methods than in Table 2.
"""

import numpy as np
from conftest import LARGE_SCALES, SMALL_SCALES, SIZING, report

from repro.analysis import ascii_table, evaluate_predictor, format_percent
from repro.apps import weak_fft, weak_stencil
from repro.baselines import make_baseline
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator

BASELINES = ["direct-rf", "direct-lasso", "direct-mlp"]


def _run(app_factory):
    n_train, n_test, reps = SIZING
    app = app_factory()
    gen = HistoryGenerator(app, seed=42)
    train = gen.collect(gen.sample_configs(n_train), SMALL_SCALES,
                        repetitions=reps)
    test = gen.collect(gen.sample_configs(n_test), LARGE_SCALES,
                       repetitions=1)

    scores = []
    model = TwoLevelModel(small_scales=SMALL_SCALES, n_clusters=3,
                          random_state=42).fit(train)
    scores.append(
        evaluate_predictor(
            "two-level",
            lambda X, s: model.predict(X, [s])[:, 0],
            test,
            LARGE_SCALES,
        )
    )
    for name in BASELINES:
        bl = make_baseline(name, seed=42).fit(train)
        scores.append(
            evaluate_predictor(
                name, lambda X, s, b=bl: b.predict(X, s), test, LARGE_SCALES
            )
        )
    scores.sort(key=lambda r: r.overall_mape)
    return app.name, scores


def _report(app_name, scores):
    rows = [
        [r.name]
        + [format_percent(r.mape_by_scale[s]) for s in LARGE_SCALES]
        + [format_percent(r.overall_mape)]
        for r in scores
    ]
    report(
        ascii_table(
            ["method"] + [f"p={s}" for s in LARGE_SCALES] + ["overall"],
            rows,
            title=f"Extension E ({app_name}) — weak-scaling MAPE",
        )
    )


def test_extE_weak_stencil(benchmark):
    app_name, scores = benchmark.pedantic(
        lambda: _run(weak_stencil), rounds=1, iterations=1
    )
    _report(app_name, scores)
    by_name = {r.name: r.overall_mape for r in scores}
    # Near-flat curves: everything should be much easier than Table 2.
    assert by_name["two-level"] < 0.5
    # Two-level stays at least competitive.
    assert by_name["two-level"] < 1.5 * min(by_name.values())


def test_extE_weak_fft(benchmark):
    app_name, scores = benchmark.pedantic(
        lambda: _run(weak_fft), rounds=1, iterations=1
    )
    _report(app_name, scores)
    by_name = {r.name: r.overall_mape for r in scores}
    assert by_name["two-level"] < 1.0
