"""Table 1 — dataset characterization.

Reproduces the evaluation-setup table: the two applications, their
input-parameter ranges, the number of configurations/runs, and the
training (small) vs test (large) scales.  The benchmarked operation is
history generation itself — the cost of producing the paper's "history
data" on the simulated platform.
"""

from conftest import LARGE_SCALES, SMALL_SCALES, experiment_config, report

from repro.analysis import build_histories
from repro.apps import get_app
from repro.analysis import ascii_table


def _characterize(histories):
    cfg = histories.config
    app = get_app(cfg.app_name)
    rows = []
    for spec in app.param_specs():
        rows.append(
            [
                cfg.app_name,
                spec.name,
                f"{spec.low:g}",
                f"{spec.high:g}",
                "int" if spec.integer else "float",
                "log" if spec.log else "lin",
                spec.description,
            ]
        )
    return rows


def test_table1_dataset_characterization(
    benchmark, stencil_histories, nbody_histories
):
    tiny = experiment_config("stencil3d", n_train_configs=10, n_test_configs=2,
                             repetitions=1)
    benchmark.pedantic(lambda: build_histories(tiny), rounds=1, iterations=1)

    rows = _characterize(stencil_histories) + _characterize(nbody_histories)
    table = ascii_table(
        ["app", "parameter", "low", "high", "type", "scale", "meaning"],
        rows,
        title="Table 1a — application parameter spaces",
    )
    report(table)

    rows2 = []
    for h in (stencil_histories, nbody_histories):
        cfg = h.config
        rows2.append(
            [
                cfg.app_name,
                cfg.n_train_configs,
                cfg.n_test_configs,
                cfg.repetitions,
                len(h.train),
                len(h.test),
                str(list(SMALL_SCALES)),
                str(list(LARGE_SCALES)),
            ]
        )
    table2 = ascii_table(
        [
            "app",
            "train cfgs",
            "test cfgs",
            "reps",
            "train runs",
            "test runs",
            "small scales (train)",
            "large scales (test)",
        ],
        rows2,
        title="Table 1b — history sizes and scale split",
    )
    report(table2)

    assert len(stencil_histories.train) > 0
    assert set(stencil_histories.test.scales) == set(LARGE_SCALES)
