"""Extension K — the history data plane at trace scale.

Three claims, one per phase:

* **out-of-core ingest** — a million-record JSONL trace streams through
  the chunked ETL into the columnar shard store with peak RSS growth
  bounded by the chunk size (not the trace size);
* **chunking invariance** — a store built chunk-by-chunk is
  bit-identical (manifest fingerprint and materialized arrays) to one
  built from the whole dataset in memory;
* **warm-start refits** — after appending runs at a single scale, a
  warm-started :class:`~repro.core.TwoLevelModel` fit reuses the
  untouched per-scale interpolators and is measurably faster than a
  cold fit, with bit-identical predictions.
"""

import json
import resource
import time

import numpy as np
from conftest import FULL, report

from repro.core import TwoLevelModel
from repro.data import ExecutionDataset, dataset_fingerprint
from repro.store import HistoryStore, IngestPipeline, JSONLExtractor

N_RECORDS = 2_000_000 if FULL else 1_000_000
CHUNK_ROWS = 65_536
SCALES = (8, 16, 32, 64)

WARM_CONFIGS = 600 if FULL else 400
WARM_SCALES = (8, 16, 32, 64, 128)


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _write_jsonl(path, n, seed=0):
    rng = np.random.default_rng(seed)
    with open(path, "w") as fh:
        written = 0
        while written < n:
            m = min(20_000, n - written)
            alpha = rng.uniform(1, 10, m)
            beta = rng.uniform(1, 10, m)
            nprocs = rng.choice(SCALES, m)
            runtime = 100.0 / nprocs + alpha * 0.5 + rng.uniform(0.01, 0.1, m)
            for i in range(m):
                fh.write(json.dumps({
                    "app_name": "synth",
                    "params": {"alpha": float(alpha[i]),
                               "beta": float(beta[i])},
                    "nprocs": int(nprocs[i]),
                    "runtime": float(runtime[i]),
                }) + "\n")
            written += m
    return path.stat().st_size / 2**20


def _synthetic(n_configs, scales, seed=0):
    rng = np.random.default_rng(seed)
    configs = rng.uniform(1.0, 10.0, size=(n_configs, 3))
    X = np.repeat(configs, len(scales), axis=0)
    nprocs = np.tile(np.asarray(scales, dtype=np.int64), n_configs)
    runtime = (
        200.0 / nprocs + X[:, 0] * 0.4 + 0.02 * X[:, 1]
        + rng.uniform(0.01, 0.05, len(nprocs))
    )
    return ExecutionDataset(
        app_name="synth", param_names=("a", "b", "c"), X=X, nprocs=nprocs,
        runtime=runtime, model_runtime=runtime,
        rep=np.zeros(len(nprocs), dtype=np.int64),
    )


def test_extK_out_of_core_ingest(benchmark, tmp_path):
    src = tmp_path / "runs.jsonl"
    src_mb = _write_jsonl(src, N_RECORDS)

    def ingest():
        rss0 = _rss_mb()
        t0 = time.perf_counter()
        pipe = IngestPipeline(tmp_path / "store", chunk_rows=CHUNK_ROWS)
        rep = pipe.run(JSONLExtractor(src), source="trace")
        return rep, time.perf_counter() - t0, _rss_mb() - rss0

    rep, dt, rss_growth = benchmark.pedantic(
        ingest, rounds=1, iterations=1
    )
    assert rep.rows_appended == N_RECORDS
    # Streaming bound: growth tracks the chunk buffer, not the trace.
    assert rss_growth < 500, f"RSS grew {rss_growth:.0f} MB — not streaming"

    store = HistoryStore.open(tmp_path / "store")
    summary = store.verify()
    report(
        "Extension K — out-of-core ingest (JSONL -> shard store)\n"
        f"  records          : {N_RECORDS:,} ({src_mb:.0f} MB JSONL)\n"
        f"  ingest           : {dt:.1f} s  "
        f"({N_RECORDS / dt:,.0f} rows/s)\n"
        f"  peak RSS growth  : {rss_growth:.0f} MB "
        f"(chunk = {CHUNK_ROWS:,} rows)\n"
        f"  shards           : {summary['shards']} "
        f"({summary['rows']:,} rows verified, fingerprints match)"
    )


def test_extK_chunked_equals_in_memory(benchmark, tmp_path):
    dataset = _synthetic(2_000, SCALES, seed=42)

    def build_chunked():
        store = HistoryStore.create(
            tmp_path / "chunked", dataset.app_name, dataset.param_names
        )
        start = 0
        while start < len(dataset):
            stop = min(start + 777, len(dataset))
            store.append(
                dataset.select(np.arange(start, stop)),
                defer_fingerprints=True,
            )
            start = stop
        store.refresh_fingerprints()
        return store

    store = benchmark.pedantic(build_chunked, rounds=1, iterations=1)
    in_memory_fp = dataset_fingerprint(dataset)
    assert store.fingerprint == in_memory_fp
    out = store.to_dataset()
    for name in ("X", "nprocs", "runtime", "model_runtime", "rep"):
        np.testing.assert_array_equal(
            getattr(out, name), getattr(dataset, name)
        )
    report(
        "Extension K — chunked build vs in-memory build\n"
        f"  rows             : {len(dataset):,} in "
        f"{store.n_shards} shards (777-row chunks)\n"
        f"  store fingerprint: {store.fingerprint}\n"
        f"  in-memory        : {in_memory_fp}\n"
        "  bit-identical    : yes (fingerprints and all arrays)"
    )


def test_extK_warm_start_refit(benchmark, tmp_path):
    history = _synthetic(WARM_CONFIGS, WARM_SCALES, seed=0)
    extra = _synthetic(WARM_CONFIGS // 10, (WARM_SCALES[-1],), seed=7)
    grown = ExecutionDataset.concat([history, extra])
    test = _synthetic(50, (256,), seed=9)

    prev = TwoLevelModel(small_scales=WARM_SCALES, random_state=0)
    prev.fit(history)

    t0 = time.perf_counter()
    cold = TwoLevelModel(small_scales=WARM_SCALES, random_state=0)
    cold.fit(grown)
    cold_s = time.perf_counter() - t0

    def warm_fit():
        model = TwoLevelModel(small_scales=WARM_SCALES, random_state=0)
        model.fit(grown, warm_start_from=prev)
        return model

    t0 = time.perf_counter()
    warm = benchmark.pedantic(warm_fit, rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0

    reused = warm.interpolator_.warm_reused_scales_
    assert reused == tuple(WARM_SCALES[:-1])
    np.testing.assert_array_equal(
        cold.predict(test.X, [256]), warm.predict(test.X, [256])
    )
    assert warm_s < cold_s, "warm refit was not faster than cold"
    report(
        "Extension K — warm-start refit after single-scale append\n"
        f"  history          : {WARM_CONFIGS} configs x "
        f"{len(WARM_SCALES)} scales, +{len(extra)} rows at "
        f"scale {WARM_SCALES[-1]}\n"
        f"  cold refit       : {cold_s * 1000:,.0f} ms\n"
        f"  warm refit       : {warm_s * 1000:,.0f} ms  "
        f"({cold_s / warm_s:.1f}x faster)\n"
        f"  reused scales    : {list(reused)} "
        "(predictions bit-identical to cold)"
    )
